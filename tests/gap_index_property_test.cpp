// Equivalence properties of the hot-path probe optimizations.
//
// The indexed gap search (binary-searched first-fit hint) and the
// slack-exhaustion early exit are pure fast paths: they must produce
// placements bit-identical to the linear reference scans they replaced
// (`probe_basic_linear` / `probe_optimal_linear`, kept as test oracles).
// These tests drive both paths through 1k randomized edge sequences and
// require slot-for-slot identical timelines.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "timeline/link_timeline.hpp"
#include "timeline/optimal_insertion.hpp"
#include "util/rng.hpp"

namespace edgesched::timeline {
namespace {

void expect_same_placement(const Placement& indexed,
                           const Placement& linear, std::size_t round) {
  ASSERT_EQ(indexed.position, linear.position) << "round " << round;
  ASSERT_EQ(indexed.earliest_start, linear.earliest_start)
      << "round " << round;
  ASSERT_EQ(indexed.start, linear.start) << "round " << round;
  ASSERT_EQ(indexed.finish, linear.finish) << "round " << round;
}

void expect_same_slots(const LinkTimeline& a, const LinkTimeline& b,
                       std::size_t round) {
  ASSERT_EQ(a.size(), b.size()) << "round " << round;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const TimeSlot& sa = a.slots()[i];
    const TimeSlot& sb = b.slots()[i];
    ASSERT_EQ(sa.earliest_start, sb.earliest_start)
        << "round " << round << " slot " << i;
    ASSERT_EQ(sa.start, sb.start) << "round " << round << " slot " << i;
    ASSERT_EQ(sa.finish, sb.finish) << "round " << round << " slot " << i;
    ASSERT_EQ(sa.edge, sb.edge) << "round " << round << " slot " << i;
  }
}

class GapIndexProperty : public ::testing::TestWithParam<std::uint64_t> {};

// 1k randomized edges committed through the indexed probe and through
// the linear reference in lockstep: every probe must agree and the two
// timelines must stay slot-for-slot identical throughout.
TEST_P(GapIndexProperty, IndexedBasicProbeMatchesLinearOverSequence) {
  Rng rng(GetParam());
  LinkTimeline indexed;
  LinkTimeline linear;
  for (std::size_t i = 0; i < 1000; ++i) {
    const double horizon = indexed.last_finish();
    const double t_es = rng.uniform_real(0.0, horizon + 10.0);
    const double duration = rng.uniform_real(0.01, 5.0);
    const double t_f_min =
        rng.bernoulli(0.3) ? t_es + rng.uniform_real(0.0, 6.0) : 0.0;

    const Placement pi = indexed.probe_basic(t_es, t_f_min, duration);
    const Placement pl =
        linear.probe_basic_linear(t_es, t_f_min, duration);
    expect_same_placement(pi, pl, i);

    // Commit on a third of the probes so the timelines keep growing and
    // later probes run against ever denser slot vectors.
    if (i % 3 == 0) {
      indexed.commit(pi, dag::EdgeId(i));
      linear.commit(pl, dag::EdgeId(i));
      expect_same_slots(indexed, linear, i);
    }
    // Occasionally roll one committed slot back (Basic Algorithm's
    // tentative-evaluation pattern) to also exercise shrinking vectors.
    if (i % 97 == 0 && !indexed.empty()) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(indexed.size()) - 1));
      indexed.erase(victim);
      linear.erase(victim);
      expect_same_slots(indexed, linear, i);
    }
  }
  indexed.check_invariants();
  expect_same_slots(indexed, linear, 1000);
}

// Large-magnitude times (makespans reach 1e7 at paper scale): the
// gap-index threshold must respect the relative tolerances.
TEST_P(GapIndexProperty, IndexedProbeMatchesLinearAtLargeMagnitudes) {
  Rng rng(GetParam() + 100);
  LinkTimeline indexed;
  LinkTimeline linear;
  const double base = 1e7;
  for (std::size_t i = 0; i < 300; ++i) {
    const double t_es = base + rng.uniform_real(0.0, 1000.0);
    const double duration = rng.uniform_real(0.5, 20.0);
    const Placement pi = indexed.probe_basic(t_es, 0.0, duration);
    const Placement pl = linear.probe_basic_linear(t_es, 0.0, duration);
    expect_same_placement(pi, pl, i);
    if (i % 2 == 0) {
      indexed.commit(pi, dag::EdgeId(i));
      linear.commit(pl, dag::EdgeId(i));
    }
  }
  expect_same_slots(indexed, linear, 300);
}

// The early-exit accum scan must return the same placement *and* the
// same displacement cascade as the full tail-to-head reference scan.
TEST_P(GapIndexProperty, EarlyExitOptimalProbeMatchesFullScan) {
  Rng rng(GetParam() + 200);
  for (std::size_t round = 0; round < 250; ++round) {
    LinkTimeline tl;
    std::map<dag::EdgeId, double> slack;
    const std::size_t slots =
        static_cast<std::size_t>(rng.uniform_int(0, 24));
    for (std::size_t i = 0; i < slots; ++i) {
      const double gap = rng.uniform_real(0.0, 2.0);
      const double duration = rng.uniform_real(0.3, 3.0);
      const dag::EdgeId edge(i);
      tl.commit(tl.probe_basic(tl.last_finish() + gap, 0.0, duration),
                edge);
      const int kind = static_cast<int>(rng.uniform_int(0, 2));
      slack[edge] = kind == 0 ? 0.0
                              : (kind == 1 ? rng.uniform_real(0.0, 1.5)
                                           : rng.uniform_real(1.5, 12.0));
    }
    const DeferralFn deferral = [&](const TimeSlot& slot) {
      return slack.at(slot.edge);
    };
    const double t_es = rng.uniform_real(0.0, tl.last_finish() + 5.0);
    const double duration = rng.uniform_real(0.2, 4.0);
    const double t_f_min =
        rng.bernoulli(0.3) ? t_es + rng.uniform_real(0.0, 6.0) : 0.0;

    const OptimalPlacement fast =
        probe_optimal(tl, t_es, t_f_min, duration, deferral);
    const OptimalPlacement full =
        probe_optimal_linear(tl, t_es, t_f_min, duration, deferral);

    ASSERT_EQ(fast.placement.position, full.placement.position)
        << "round " << round;
    ASSERT_EQ(fast.placement.start, full.placement.start)
        << "round " << round;
    ASSERT_EQ(fast.placement.finish, full.placement.finish)
        << "round " << round;
    ASSERT_EQ(fast.shifts.size(), full.shifts.size()) << "round " << round;
    for (std::size_t s = 0; s < fast.shifts.size(); ++s) {
      ASSERT_EQ(fast.shifts[s].position, full.shifts[s].position);
      ASSERT_EQ(fast.shifts[s].new_start, full.shifts[s].new_start);
      ASSERT_EQ(fast.shifts[s].new_finish, full.shifts[s].new_finish);
    }
  }
}

// The allocation-free probe_optimal_into must behave exactly like
// probe_optimal even when its scratch carries stale state from previous
// (larger) results.
TEST_P(GapIndexProperty, ScratchReuseIsStateless) {
  Rng rng(GetParam() + 300);
  OptimalPlacement scratch;
  for (std::size_t round = 0; round < 100; ++round) {
    LinkTimeline tl;
    const std::size_t slots =
        static_cast<std::size_t>(rng.uniform_int(0, 12));
    for (std::size_t i = 0; i < slots; ++i) {
      tl.commit(tl.probe_basic(tl.last_finish() +
                                   rng.uniform_real(0.0, 1.0),
                               0.0, rng.uniform_real(0.5, 2.0)),
                dag::EdgeId(i));
    }
    const DeferralFn deferral = [](const TimeSlot& slot) {
      return (slot.edge.value() % 2 == 0) ? 3.0 : 0.0;
    };
    const double t_es = rng.uniform_real(0.0, tl.last_finish() + 2.0);
    const OptimalPlacement fresh =
        probe_optimal(tl, t_es, 0.0, 1.0, deferral);
    probe_optimal_into(tl, t_es, 0.0, 1.0, deferral, scratch);
    ASSERT_EQ(scratch.placement.position, fresh.placement.position);
    ASSERT_EQ(scratch.placement.start, fresh.placement.start);
    ASSERT_EQ(scratch.placement.finish, fresh.placement.finish);
    ASSERT_EQ(scratch.shifts.size(), fresh.shifts.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapIndexProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace edgesched::timeline
