// Cross-module integration: every algorithm on shared scenarios, checked
// against the independent validator and against hand-derived makespans.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "dag/serialization.hpp"
#include "net/builders.hpp"
#include "net/serialization.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/classic.hpp"
#include "sched/oihsa.hpp"
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

std::vector<std::unique_ptr<Scheduler>> contention_schedulers() {
  return all_schedulers();
}

TEST(Integration, AllSchedulersListedOnce) {
  const auto schedulers = all_schedulers();
  ASSERT_EQ(schedulers.size(), 3u);
  EXPECT_EQ(schedulers[0]->name(), "BA");
  EXPECT_EQ(schedulers[1]->name(), "OIHSA");
  EXPECT_EQ(schedulers[2]->name(), "BBSA");
}

TEST(Integration, SingleProcessorAllAlgorithmsAgree) {
  // With one processor every communication is local: each algorithm must
  // produce exactly total_work and an identical execution order.
  Rng rng(1);
  const net::Topology topo = net::switched_star(1, net::SpeedConfig{}, rng);
  dag::LayeredDagParams params;
  params.num_tasks = 20;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  const double total = graph.total_computation();
  for (const auto& scheduler : contention_schedulers()) {
    const Schedule s = scheduler->schedule(graph, topo);
    validate_or_throw(graph, topo, s);
    EXPECT_DOUBLE_EQ(s.makespan(), total) << scheduler->name();
  }
  const Schedule classic = ClassicScheduler{}.schedule(graph, topo);
  EXPECT_DOUBLE_EQ(classic.makespan(), total);
}

TEST(Integration, ZeroCommunicationGraphNeedsNoNetwork) {
  // Independent tasks: the network never matters; makespan approaches the
  // balanced partition bound.
  dag::TaskGraph graph;
  for (int i = 0; i < 8; ++i) {
    (void)graph.add_task(3.0);
  }
  Rng rng(2);
  const net::Topology topo =
      net::switched_star(4, net::SpeedConfig{}, rng);
  for (const auto& scheduler : contention_schedulers()) {
    const Schedule s = scheduler->schedule(graph, topo);
    validate_or_throw(graph, topo, s);
    EXPECT_DOUBLE_EQ(s.makespan(), 6.0) << scheduler->name();
  }
}

TEST(Integration, ChainStaysOnOneProcessorEverywhere) {
  const dag::TaskGraph graph = dag::chain(6, 2.0, 10.0);
  Rng rng(3);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  for (const auto& scheduler : contention_schedulers()) {
    const Schedule s = scheduler->schedule(graph, topo);
    validate_or_throw(graph, topo, s);
    EXPECT_DOUBLE_EQ(s.makespan(), 12.0) << scheduler->name();
  }
}

TEST(Integration, MakespanNeverBelowComputationBounds) {
  Rng rng(7);
  dag::LayeredDagParams params;
  params.num_tasks = 40;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 1.0);
  const net::Topology topo =
      net::switched_star(4, net::SpeedConfig{}, rng);
  const auto bl = dag::bottom_levels_computation_only(graph);
  const double cp_bound = *std::max_element(bl.begin(), bl.end());
  const double work_bound = graph.total_computation() / 4.0;
  for (const auto& scheduler : contention_schedulers()) {
    const Schedule s = scheduler->schedule(graph, topo);
    EXPECT_GE(s.makespan(), cp_bound - 1e-6) << scheduler->name();
    EXPECT_GE(s.makespan(), work_bound - 1e-6) << scheduler->name();
  }
}

TEST(Integration, SerialisedInstanceSchedulesIdentically) {
  // Round-trip graph and topology through the text formats, then verify
  // every scheduler produces the same makespan on both copies.
  Rng rng(9);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 5;
  const net::Topology topo = net::random_wan(wan, rng);

  const dag::TaskGraph graph2 = dag::from_text(dag::to_text(graph));
  const net::Topology topo2 = net::from_text(net::to_text(topo));
  for (const auto& scheduler : contention_schedulers()) {
    const double m1 = scheduler->schedule(graph, topo).makespan();
    const double m2 = scheduler->schedule(graph2, topo2).makespan();
    EXPECT_DOUBLE_EQ(m1, m2) << scheduler->name();
  }
}

TEST(Integration, CanonicalWorkloadsAcrossTopologies) {
  Rng rng(11);
  const net::SpeedConfig speeds;
  std::vector<net::Topology> topologies;
  topologies.push_back(net::fully_connected(4, speeds, rng));
  topologies.push_back(net::switched_star(4, speeds, rng));
  topologies.push_back(net::ring(4, speeds, rng));
  topologies.push_back(net::mesh2d(2, 2, speeds, rng));
  topologies.push_back(net::hypercube(2, speeds, rng));
  topologies.push_back(net::fat_tree(2, 2, speeds, rng));
  topologies.push_back(net::bus(4, speeds, rng));

  std::vector<dag::TaskGraph> graphs;
  graphs.push_back(dag::fork_join(5, 2.0, 3.0));
  graphs.push_back(dag::fft(4, 1.0, 2.0));
  graphs.push_back(dag::gaussian_elimination(4, 2.0, 1.0));
  graphs.push_back(dag::stencil_1d(3, 4, 1.0, 1.0));

  for (const auto& topo : topologies) {
    for (const auto& graph : graphs) {
      for (const auto& scheduler : contention_schedulers()) {
        const Schedule s = scheduler->schedule(graph, topo);
        validate_or_throw(graph, topo, s);
        EXPECT_GT(s.makespan(), 0.0)
            << scheduler->name() << " on " << topo.name();
      }
    }
  }
}

TEST(Integration, StgWorkflowSchedulesEndToEnd) {
  // Regression: STG graphs have zero-weight dummy entry/exit tasks that
  // once broke processor-timeline insertion ordering.
  const dag::TaskGraph graph = dag::from_stg(
      "4\n"
      "0 0 0\n"
      "1 10 1 0\n"
      "2 6 1 0\n"
      "3 12 2 1 2\n"
      "4 5 1 3\n"
      "5 0 1 4\n",
      3.0);
  Rng rng(17);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  for (const auto& scheduler : contention_schedulers()) {
    const Schedule s = scheduler->schedule(graph, topo);
    validate_or_throw(graph, topo, s);
  }
}

TEST(Integration, HeterogeneousInstanceEndToEnd) {
  Rng rng(13);
  dag::LayeredDagParams params;
  params.num_tasks = 30;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 2.0);
  net::RandomWanParams wan;
  wan.num_processors = 8;
  wan.speeds.heterogeneous = true;
  const net::Topology topo = net::random_wan(wan, rng);
  for (const auto& scheduler : contention_schedulers()) {
    const Schedule s = scheduler->schedule(graph, topo);
    validate_or_throw(graph, topo, s);
  }
}

}  // namespace
}  // namespace edgesched::sched
