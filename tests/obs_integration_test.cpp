// End-to-end observability: run OIHSA on a hand-computed instance and
// assert the decision log explains the schedule — which processor won
// each §4.1 estimate, the §4.2 edge order, and the §4.3/§4.4 route each
// remote edge was booked on.
#include <gtest/gtest.h>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "obs/counters.hpp"
#include "obs/decision_log.hpp"
#include "sched/ba.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched {
namespace {

// Diamond-free join: a(2), b(3), c(4) all feed d(1); edge costs a->d 6,
// b->d 2, c->d 4. Two unit-speed processors joined by one duplex link of
// rate 1. Hand-worked OIHSA run:
//   bottom levels: a 9, b 6, c 9, d 1  =>  list order a, c, b, d
//   a -> p0 (both estimates 2; first wins), finishes at 2
//   c -> p1 (est 6 on p0 behind a, 4 on free p1), finishes at 4
//   b -> p0 (est 5 behind a; 7 on p1 behind c), finishes at 5
//   d -> p0 (ready moment 5; arrival estimate 9 on both; p0 kept)
//   edges of d in decreasing cost: a->d local, c->d routed p1->p0 over
//   the link at [5, 9], b->d local  =>  d runs [9, 10], makespan 10.
struct JoinFixture {
  dag::TaskGraph graph;
  net::Topology topo;
  dag::TaskId a, b, c, d;
  dag::EdgeId ad, bd, cd;

  JoinFixture() {
    a = graph.add_task(2.0, "a");
    b = graph.add_task(3.0, "b");
    c = graph.add_task(4.0, "c");
    d = graph.add_task(1.0, "d");
    ad = graph.add_edge(a, d, 6.0);
    bd = graph.add_edge(b, d, 2.0);
    cd = graph.add_edge(c, d, 4.0);
    const net::NodeId p0 = topo.add_processor(1.0, "p0");
    const net::NodeId p1 = topo.add_processor(1.0, "p1");
    topo.add_duplex_link(p0, p1, 1.0);
  }
};

TEST(ObsIntegration, OihsaTaskDecisionsMatchHandComputation) {
  const JoinFixture fx;
  obs::DecisionLog log;
  sched::Schedule schedule = [&] {
    obs::ScopedDecisionLog scoped(log);
    return sched::Oihsa{}.schedule(fx.graph, fx.topo);
  }();
  sched::validate_or_throw(fx.graph, fx.topo, schedule);
  EXPECT_DOUBLE_EQ(schedule.makespan(), 10.0);

  const auto tasks = log.task_decisions();
  ASSERT_EQ(tasks.size(), 4u);
  // §4.2 list order by bottom level: a, c, b, d.
  EXPECT_EQ(tasks[0].task, fx.a.index());
  EXPECT_EQ(tasks[1].task, fx.c.index());
  EXPECT_EQ(tasks[2].task, fx.b.index());
  EXPECT_EQ(tasks[3].task, fx.d.index());
  for (const auto& t : tasks) {
    EXPECT_EQ(t.algorithm, "OIHSA");
    ASSERT_EQ(t.candidates.size(), 2u);  // both processors considered
  }

  // a: tie at estimate 2, first processor kept.
  EXPECT_EQ(tasks[0].chosen_processor, 0u);
  EXPECT_DOUBLE_EQ(tasks[0].chosen_estimate, 2.0);
  EXPECT_DOUBLE_EQ(tasks[0].candidates[0].estimate, 2.0);
  EXPECT_DOUBLE_EQ(tasks[0].candidates[1].estimate, 2.0);

  // c: p0 is busy with a until 2 (estimate 6), p1 is free (estimate 4).
  EXPECT_EQ(tasks[1].chosen_processor, 1u);
  EXPECT_DOUBLE_EQ(tasks[1].chosen_estimate, 4.0);
  EXPECT_DOUBLE_EQ(tasks[1].candidates[0].estimate, 6.0);
  EXPECT_DOUBLE_EQ(tasks[1].candidates[1].estimate, 4.0);

  // b: behind a on p0 (5) beats behind c on p1 (7).
  EXPECT_EQ(tasks[2].chosen_processor, 0u);
  EXPECT_DOUBLE_EQ(tasks[2].chosen_estimate, 5.0);
  EXPECT_DOUBLE_EQ(tasks[2].candidates[0].estimate, 5.0);
  EXPECT_DOUBLE_EQ(tasks[2].candidates[1].estimate, 7.0);

  // d: estimated data-ready 8 and finish 9 on either processor.
  EXPECT_EQ(tasks[3].chosen_processor, 0u);
  EXPECT_DOUBLE_EQ(tasks[3].chosen_estimate, 9.0);
  for (const auto& candidate : tasks[3].candidates) {
    EXPECT_DOUBLE_EQ(candidate.ready_estimate, 8.0);
    EXPECT_DOUBLE_EQ(candidate.estimate, 9.0);
  }
}

TEST(ObsIntegration, OihsaEdgeDecisionsMatchHandComputation) {
  const JoinFixture fx;
  obs::DecisionLog log;
  {
    obs::ScopedDecisionLog scoped(log);
    (void)sched::Oihsa{}.schedule(fx.graph, fx.topo);
  }

  const auto edges = log.edge_decisions();
  ASSERT_EQ(edges.size(), 3u);
  // §4.2: d's in-edges booked in decreasing cost order 6, 4, 2.
  EXPECT_EQ(edges[0].edge, fx.ad.index());
  EXPECT_EQ(edges[1].edge, fx.cd.index());
  EXPECT_EQ(edges[2].edge, fx.bd.index());

  // a->d and b->d stay on p0 with d: local, arrival = source finish /
  // ready moment, no hops.
  EXPECT_TRUE(edges[0].local);
  EXPECT_DOUBLE_EQ(edges[0].arrival, 2.0);
  EXPECT_TRUE(edges[0].hops.empty());
  EXPECT_TRUE(edges[2].local);
  EXPECT_DOUBLE_EQ(edges[2].arrival, 5.0);

  // c->d crosses p1 -> p0: one hop occupying the link over [5, 9].
  EXPECT_FALSE(edges[1].local);
  EXPECT_EQ(edges[1].src_task, fx.c.index());
  EXPECT_EQ(edges[1].dst_task, fx.d.index());
  EXPECT_DOUBLE_EQ(edges[1].ship_time, 5.0);
  EXPECT_DOUBLE_EQ(edges[1].arrival, 9.0);
  ASSERT_EQ(edges[1].hops.size(), 1u);
  EXPECT_DOUBLE_EQ(edges[1].hops[0].start, 5.0);
  EXPECT_DOUBLE_EQ(edges[1].hops[0].finish, 9.0);

  // The one remote edge was committed by optimal insertion without
  // displacing anything: plain first-fit on an empty link.
  const auto insertions = log.insertion_decisions();
  ASSERT_EQ(insertions.size(), 1u);
  EXPECT_EQ(insertions[0].edge, fx.cd.index());
  EXPECT_FALSE(insertions[0].deferral);
  EXPECT_EQ(insertions[0].shifts, 0u);
  EXPECT_DOUBLE_EQ(insertions[0].slack_consumed, 0.0);
  EXPECT_DOUBLE_EQ(insertions[0].start, 5.0);
  EXPECT_DOUBLE_EQ(insertions[0].finish, 9.0);
}

TEST(ObsIntegration, BaTagsItsDecisionsWithItsOwnName) {
  const JoinFixture fx;
  obs::DecisionLog log;
  {
    obs::ScopedDecisionLog scoped(log);
    (void)sched::BasicAlgorithm{}.schedule(fx.graph, fx.topo);
  }
  const auto tasks = log.task_decisions();
  ASSERT_EQ(tasks.size(), 4u);
  for (const auto& t : tasks) {
    EXPECT_EQ(t.algorithm, "BA");
  }
}

TEST(ObsIntegration, HotCountersTallyTheRun) {
  const JoinFixture fx;
  obs::HotCounters& counters = obs::hot_counters();
  const std::uint64_t tasks_before = counters.tasks_placed.value();
  const std::uint64_t edges_before = counters.edges_routed.value();
  const std::uint64_t probes_before = counters.optimal_probes.value();

  (void)sched::Oihsa{}.schedule(fx.graph, fx.topo);

  // Counters batch inside the run and flush when the scheduling state is
  // torn down, so by the time schedule() returns they are visible.
  EXPECT_EQ(counters.tasks_placed.value() - tasks_before, 4u);
  EXPECT_EQ(counters.edges_routed.value() - edges_before, 1u);
  EXPECT_GT(counters.optimal_probes.value(), probes_before);
}

TEST(ObsIntegration, NoLogInstalledMeansNothingRecorded) {
  const JoinFixture fx;
  ASSERT_EQ(obs::active_decision_log(), nullptr);
  const sched::Schedule schedule = sched::Oihsa{}.schedule(fx.graph, fx.topo);
  EXPECT_DOUBLE_EQ(schedule.makespan(), 10.0);
}

}  // namespace
}  // namespace edgesched
