#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace edgesched {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (a.next() == b.next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniform_int(42, 42), 42);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_int(0, 9));
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(13);
  std::vector<int> histogram(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, UniformIntThrowsOnInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, UniformRealStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, UniformRealMeanIsCentred) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    sum += rng.uniform_real(0.0, 1.0);
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(23);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeProbabilities) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW((void)rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW((void)rng.bernoulli(-0.1), std::invalid_argument);
}

TEST(Rng, IndexThrowsOnEmptyRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += (parent.next() == child.next()) ? 1 : 0;
  }
  EXPECT_LT(equal, 5);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t replay = 0;
  EXPECT_EQ(splitmix64(replay), first);
  EXPECT_EQ(splitmix64(replay), second);
}

}  // namespace
}  // namespace edgesched
