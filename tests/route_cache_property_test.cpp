// Equivalence properties of the source-sharded route caches.
//
// `RouteCache` and `ProbedRouteCache` replaced their (from, to)-keyed
// maps with dense per-source shards for O(1) lookups. Both are pure
// memo layers: against the same query sequence they must return exactly
// what a straightforward map-based memo returns — the same routes, and
// for the probe memo the same hit/miss decisions (a spurious hit would
// resurrect a route from a stale network generation; a spurious miss
// only costs time but would still betray a keying bug).
#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "net/builders.hpp"
#include "net/routing.hpp"
#include "util/rng.hpp"

namespace edgesched::net {
namespace {

class RouteCacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Random (from, to) query storms over a multi-path topology: every
// sharded answer must equal both a fresh BFS and a map-keyed memo.
TEST_P(RouteCacheProperty, ShardedBfsCacheMatchesMapMemo) {
  Rng rng(GetParam());
  const Topology topo = mesh2d(4, 4, SpeedConfig{}, rng);
  RouteCache cache(topo);
  std::map<std::pair<NodeId, NodeId>, Route> reference;
  const auto nodes = static_cast<std::int64_t>(topo.num_nodes());
  for (std::size_t i = 0; i < 2000; ++i) {
    const NodeId from(static_cast<std::size_t>(rng.uniform_int(0, nodes - 1)));
    const NodeId to(static_cast<std::size_t>(rng.uniform_int(0, nodes - 1)));
    const Route& got = cache.route(from, to);
    const auto key = std::make_pair(from, to);
    auto it = reference.find(key);
    if (it == reference.end()) {
      it = reference.emplace(key, bfs_route(topo, from, to)).first;
    }
    ASSERT_EQ(got, it->second) << "query " << i;
  }
}

// The probe memo's contract is exact-query identity: same endpoints,
// bit-identical ready/cost, same load generation. Drive the sharded
// memo and a map-based reference with a random mix of lookups and
// stores (generations advance, ready/cost repeat or not) and require
// identical hit/miss behaviour and identical returned routes.
TEST_P(RouteCacheProperty, ShardedProbeMemoMatchesMapMemo) {
  Rng rng(GetParam() + 1);
  const Topology topo = switched_star(6, SpeedConfig{}, rng);
  ProbedRouteCache sharded;
  struct RefEntry {
    double ready;
    double cost;
    std::uint64_t generation;
    Route route;
  };
  std::map<std::pair<NodeId, NodeId>, RefEntry> reference;

  const auto nodes = static_cast<std::int64_t>(topo.num_nodes());
  std::uint64_t generation = 0;
  // A few recurring (ready, cost) values make genuine hits common.
  const double readies[] = {0.0, 1.5, 7.25};
  const double costs[] = {10.0, 64.0};
  for (std::size_t i = 0; i < 3000; ++i) {
    if (rng.bernoulli(0.1)) {
      ++generation;  // a link mutation elsewhere invalidates everything
    }
    const NodeId from(static_cast<std::size_t>(rng.uniform_int(0, nodes - 1)));
    const NodeId to(static_cast<std::size_t>(rng.uniform_int(0, nodes - 1)));
    const double ready = readies[rng.uniform_int(0, 2)];
    const double cost = costs[rng.uniform_int(0, 1)];

    const Route* hit = sharded.lookup(from, to, ready, cost, generation);
    const auto it = reference.find(std::make_pair(from, to));
    const bool ref_hit = it != reference.end() &&
                         it->second.generation == generation &&
                         it->second.ready == ready &&
                         it->second.cost == cost;
    ASSERT_EQ(hit != nullptr, ref_hit) << "query " << i;
    if (hit != nullptr) {
      ASSERT_EQ(*hit, it->second.route) << "query " << i;
    } else if (from != to) {
      const Route computed = bfs_route(topo, from, to);
      sharded.store(from, to, ready, cost, generation, computed);
      reference[std::make_pair(from, to)] =
          RefEntry{ready, cost, generation, computed};
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouteCacheProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace edgesched::net
