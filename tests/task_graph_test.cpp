#include "dag/task_graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace edgesched::dag {
namespace {

TaskGraph diamond_graph() {
  TaskGraph g("diamond");
  const TaskId a = g.add_task(2.0, "a");
  const TaskId b = g.add_task(3.0, "b");
  const TaskId c = g.add_task(4.0, "c");
  const TaskId d = g.add_task(5.0, "d");
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 2.0);
  g.add_edge(b, d, 3.0);
  g.add_edge(c, d, 4.0);
  return g;
}

TEST(TaskGraph, StartsEmpty) {
  TaskGraph g;
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_tasks(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(TaskGraph, AddTaskAssignsDenseIds) {
  TaskGraph g;
  EXPECT_EQ(g.add_task(1.0).value(), 0u);
  EXPECT_EQ(g.add_task(2.0).value(), 1u);
  EXPECT_EQ(g.add_task(3.0).value(), 2u);
  EXPECT_EQ(g.num_tasks(), 3u);
}

TEST(TaskGraph, TaskNamesDefaultAndExplicit) {
  TaskGraph g;
  const TaskId anon = g.add_task(1.0);
  const TaskId named = g.add_task(1.0, "compute");
  EXPECT_EQ(g.task(anon).name, "n0");
  EXPECT_EQ(g.task(named).name, "compute");
}

TEST(TaskGraph, RejectsNegativeWeight) {
  TaskGraph g;
  EXPECT_THROW((void)g.add_task(-1.0), std::invalid_argument);
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g;
  const TaskId a = g.add_task(1.0);
  const TaskId b = g.add_task(1.0);
  EXPECT_THROW((void)g.add_edge(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_edge(a, TaskId(9u), 1.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_edge(a, b, -1.0), std::invalid_argument);
  (void)g.add_edge(a, b, 1.0);
  EXPECT_THROW((void)g.add_edge(a, b, 2.0), std::invalid_argument);
}

TEST(TaskGraph, AdjacencyIsSymmetric) {
  const TaskGraph g = diamond_graph();
  const TaskId a(0u), b(1u), c(2u), d(3u);
  EXPECT_EQ(g.successors(a), (std::vector<TaskId>{b, c}));
  EXPECT_EQ(g.predecessors(d), (std::vector<TaskId>{b, c}));
  EXPECT_EQ(g.in_edges(a).size(), 0u);
  EXPECT_EQ(g.out_edges(d).size(), 0u);
}

TEST(TaskGraph, EdgeEndpointsAndCosts) {
  const TaskGraph g = diamond_graph();
  const Edge& e = g.edge(EdgeId(3u));
  EXPECT_EQ(e.src, TaskId(2u));
  EXPECT_EQ(e.dst, TaskId(3u));
  EXPECT_DOUBLE_EQ(e.cost, 4.0);
}

TEST(TaskGraph, SetCostRescales) {
  TaskGraph g = diamond_graph();
  g.set_cost(EdgeId(0u), 10.0);
  EXPECT_DOUBLE_EQ(g.cost(EdgeId(0u)), 10.0);
  EXPECT_THROW(g.set_cost(EdgeId(0u), -1.0), std::invalid_argument);
}

TEST(TaskGraph, EntryAndExitTasks) {
  const TaskGraph g = diamond_graph();
  EXPECT_EQ(g.entry_tasks(), std::vector<TaskId>{TaskId(0u)});
  EXPECT_EQ(g.exit_tasks(), std::vector<TaskId>{TaskId(3u)});
}

TEST(TaskGraph, AcyclicDetection) {
  TaskGraph g = diamond_graph();
  EXPECT_TRUE(g.is_acyclic());
  g.add_edge(TaskId(3u), TaskId(0u), 1.0);  // close the cycle
  EXPECT_FALSE(g.is_acyclic());
  EXPECT_THROW(g.validate(), std::invalid_argument);
  EXPECT_THROW((void)g.topological_order(), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderRespectsPrecedence) {
  const TaskGraph g = diamond_graph();
  const std::vector<TaskId> order = g.topological_order();
  ASSERT_EQ(order.size(), g.num_tasks());
  std::vector<std::size_t> position(g.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i].index()] = i;
  }
  for (EdgeId e : g.all_edges()) {
    EXPECT_LT(position[g.edge(e).src.index()],
              position[g.edge(e).dst.index()]);
  }
}

TEST(TaskGraph, TopologicalOrderIsDeterministic) {
  const TaskGraph g = diamond_graph();
  EXPECT_EQ(g.topological_order(), g.topological_order());
}

TEST(TaskGraph, Totals) {
  const TaskGraph g = diamond_graph();
  EXPECT_DOUBLE_EQ(g.total_computation(), 14.0);
  EXPECT_DOUBLE_EQ(g.total_communication(), 10.0);
}

TEST(TaskGraph, IndependentTasksBothEntryAndExit) {
  TaskGraph g;
  (void)g.add_task(1.0);
  (void)g.add_task(1.0);
  EXPECT_EQ(g.entry_tasks().size(), 2u);
  EXPECT_EQ(g.exit_tasks().size(), 2u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(StrongId, InvalidByDefault) {
  TaskId id;
  EXPECT_FALSE(id.valid());
  EXPECT_TRUE(TaskId(0u).valid());
}

TEST(StrongId, OrdersAndHashesLikeUnderlying) {
  EXPECT_LT(TaskId(1u), TaskId(2u));
  EXPECT_EQ(std::hash<TaskId>{}(TaskId(5u)), std::hash<TaskId>{}(TaskId(5u)));
}

}  // namespace
}  // namespace edgesched::dag
