#include "net/builders.hpp"

#include <gtest/gtest.h>

#include <set>

namespace edgesched::net {
namespace {

SpeedConfig homogeneous() { return SpeedConfig{}; }

SpeedConfig heterogeneous() {
  SpeedConfig s;
  s.heterogeneous = true;
  return s;
}

TEST(FullyConnected, Structure) {
  Rng rng(1);
  const Topology t = fully_connected(4, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 4u);
  EXPECT_EQ(t.num_nodes(), 4u);
  EXPECT_EQ(t.num_links(), 12u);  // 6 pairs x 2 directions
  EXPECT_TRUE(t.processors_connected());
}

TEST(SwitchedStar, Structure) {
  Rng rng(1);
  const Topology t = switched_star(5, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 5u);
  EXPECT_EQ(t.num_nodes(), 6u);
  EXPECT_EQ(t.num_links(), 10u);
  EXPECT_TRUE(t.processors_connected());
}

TEST(Ring, Structure) {
  Rng rng(1);
  const Topology t = ring(6, homogeneous(), rng);
  EXPECT_EQ(t.num_links(), 12u);
  EXPECT_TRUE(t.processors_connected());
  for (NodeId p : t.processors()) {
    EXPECT_EQ(t.out_links(p).size(), 2u);
    EXPECT_EQ(t.in_links(p).size(), 2u);
  }
}

TEST(Mesh2d, Structure) {
  Rng rng(1);
  const Topology t = mesh2d(3, 4, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 12u);
  // Horizontal: 3*3, vertical: 2*4, duplex.
  EXPECT_EQ(t.num_links(), 2u * (9 + 8));
  EXPECT_TRUE(t.processors_connected());
}

TEST(Torus2d, WrapsAround) {
  Rng rng(1);
  const Topology t = torus2d(3, 3, homogeneous(), rng);
  EXPECT_TRUE(t.processors_connected());
  // Every node in a 3x3 torus has degree 4.
  for (NodeId p : t.processors()) {
    EXPECT_EQ(t.out_links(p).size(), 4u);
  }
}

TEST(Hypercube, Structure) {
  Rng rng(1);
  const Topology t = hypercube(3, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 8u);
  EXPECT_EQ(t.num_links(), 2u * 12u);  // 8*3/2 edges, duplex
  EXPECT_TRUE(t.processors_connected());
  for (NodeId p : t.processors()) {
    EXPECT_EQ(t.out_links(p).size(), 3u);
  }
}

TEST(FatTree, Structure) {
  Rng rng(1);
  const Topology t = fat_tree(3, 4, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 12u);
  EXPECT_EQ(t.num_nodes(), 16u);  // 12 procs + 3 leaves + core
  EXPECT_TRUE(t.processors_connected());
}

TEST(Bus, SingleDomain) {
  Rng rng(1);
  const Topology t = bus(4, homogeneous(), rng);
  EXPECT_EQ(t.num_domains(), 1u);
  EXPECT_EQ(t.num_links(), 12u);
  EXPECT_TRUE(t.processors_connected());
}

TEST(Builders, HeterogeneousSpeedsInPaperRange) {
  Rng rng(99);
  const Topology t = fully_connected(6, heterogeneous(), rng);
  std::set<double> speeds;
  for (NodeId p : t.processors()) {
    const double s = t.processor_speed(p);
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 10.0);
    speeds.insert(s);
  }
  for (LinkId l : t.all_links()) {
    EXPECT_GE(t.link_speed(l), 1.0);
    EXPECT_LE(t.link_speed(l), 10.0);
  }
}

TEST(Builders, HomogeneousSpeedsAllOne) {
  Rng rng(3);
  const Topology t = switched_star(8, homogeneous(), rng);
  for (NodeId p : t.processors()) {
    EXPECT_DOUBLE_EQ(t.processor_speed(p), 1.0);
  }
  for (LinkId l : t.all_links()) {
    EXPECT_DOUBLE_EQ(t.link_speed(l), 1.0);
  }
}

TEST(Dragonfly, Structure) {
  Rng rng(1);
  const Topology t = dragonfly(3, 2, 2, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 12u);
  EXPECT_TRUE(t.processors_connected());
  // Switches: 6; links: 12 proc attachments + 3 intra-group meshes (1
  // cable each) + 3 global cables, all duplex.
  EXPECT_EQ(t.num_nodes(), 18u);
  EXPECT_EQ(t.num_links(), 2u * (12 + 3 + 3));
  EXPECT_THROW((void)dragonfly(0, 2, 2, homogeneous(), rng),
               std::invalid_argument);
}

TEST(SwitchTree, Structure) {
  Rng rng(1);
  const Topology t = switch_tree(3, 2, 2, homogeneous(), rng);
  // Switches: 1 + 2 + 4 = 7; processors: 4 leaves x 2 = 8.
  EXPECT_EQ(t.num_processors(), 8u);
  EXPECT_EQ(t.num_nodes(), 15u);
  EXPECT_TRUE(t.processors_connected());
  EXPECT_THROW((void)switch_tree(9, 2, 2, homogeneous(), rng),
               std::invalid_argument);
}

TEST(SwitchTree, SingleLevelIsStar) {
  Rng rng(1);
  const Topology t = switch_tree(1, 4, 5, homogeneous(), rng);
  EXPECT_EQ(t.num_processors(), 5u);
  EXPECT_EQ(t.num_nodes(), 6u);
}

class RandomWanTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(RandomWanTest, Invariants) {
  const auto [procs, seed] = GetParam();
  Rng rng(seed);
  RandomWanParams params;
  params.num_processors = procs;
  const Topology t = random_wan(params, rng);
  EXPECT_EQ(t.num_processors(), procs);
  EXPECT_TRUE(t.processors_connected());
  // Every processor hangs off exactly one switch.
  for (NodeId p : t.processors()) {
    ASSERT_EQ(t.out_links(p).size(), 1u);
    const NodeId neighbour = t.link(t.out_links(p).front()).dst;
    EXPECT_FALSE(t.is_processor(neighbour));
  }
  // Switch fan-out respects U(4, 16) except possibly the last switch.
  std::size_t switches = 0;
  for (NodeId n : t.all_nodes()) {
    if (!t.is_processor(n)) {
      ++switches;
    }
  }
  EXPECT_GE(switches, (procs + 15) / 16);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomWanTest,
    ::testing::Combine(::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u),
                       ::testing::Values(1u, 7u)));

TEST(RandomWan, DeterministicForSeed) {
  RandomWanParams params;
  params.num_processors = 20;
  Rng rng1(5);
  Rng rng2(5);
  const Topology a = random_wan(params, rng1);
  const Topology b = random_wan(params, rng2);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_links(), b.num_links());
  for (LinkId l : a.all_links()) {
    EXPECT_EQ(a.link(l).src, b.link(l).src);
    EXPECT_EQ(a.link(l).dst, b.link(l).dst);
  }
}

TEST(Builders, RejectBadArguments) {
  Rng rng(1);
  EXPECT_THROW((void)fully_connected(0, homogeneous(), rng),
               std::invalid_argument);
  EXPECT_THROW((void)ring(1, homogeneous(), rng), std::invalid_argument);
  EXPECT_THROW((void)mesh2d(0, 3, homogeneous(), rng),
               std::invalid_argument);
  EXPECT_THROW((void)torus2d(1, 3, homogeneous(), rng),
               std::invalid_argument);
  EXPECT_THROW((void)hypercube(0, homogeneous(), rng),
               std::invalid_argument);
  EXPECT_THROW((void)bus(1, homogeneous(), rng), std::invalid_argument);
  RandomWanParams bad;
  bad.num_processors = 0;
  EXPECT_THROW((void)random_wan(bad, rng), std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::net
