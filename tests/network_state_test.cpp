#include "sched/network_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "net/builders.hpp"

namespace edgesched::sched {
namespace {

/// p0 -L0-> sw -L2-> p1 (plus reverse links); all speeds 1.
struct Fixture {
  net::Topology topo;
  net::NodeId p0, p1, sw;
  net::Route route;

  Fixture() {
    p0 = topo.add_processor(1.0, "p0");
    p1 = topo.add_processor(1.0, "p1");
    sw = topo.add_switch("sw");
    const auto [up, down] = topo.add_duplex_link(p0, sw, 1.0);
    const auto [out, back] = topo.add_duplex_link(sw, p1, 1.0);
    (void)down;
    (void)back;
    route = {up, out};
  }
};

TEST(ExclusiveNetworkState, BasicCommitRecordsOccupations) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  const double arrival =
      state.commit_edge_basic(dag::EdgeId(0u), f.route, 2.0, 6.0);
  EXPECT_DOUBLE_EQ(arrival, 8.0);  // cut-through: both hops [2, 8]
  const EdgeRecord& record = state.record(dag::EdgeId(0u));
  ASSERT_TRUE(record.scheduled());
  ASSERT_EQ(record.occupations.size(), 2u);
  EXPECT_DOUBLE_EQ(record.occupations[0].start, 2.0);
  EXPECT_DOUBLE_EQ(record.occupations[0].finish, 8.0);
  EXPECT_DOUBLE_EQ(record.occupations[1].finish, 8.0);
  EXPECT_DOUBLE_EQ(state.total_busy_time(), 12.0);
}

TEST(ExclusiveNetworkState, SecondEdgeQueuesBehindFirst) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  (void)state.commit_edge_basic(dag::EdgeId(0u), f.route, 0.0, 4.0);
  const double arrival =
      state.commit_edge_basic(dag::EdgeId(1u), f.route, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(arrival, 8.0);  // waits for the first transfer
}

TEST(ExclusiveNetworkState, UncommitRestoresTimelines) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  (void)state.commit_edge_basic(dag::EdgeId(0u), f.route, 0.0, 4.0);
  const double before = state.total_busy_time();
  (void)state.commit_edge_basic(dag::EdgeId(1u), f.route, 0.0, 4.0);
  state.uncommit_edge(dag::EdgeId(1u));
  EXPECT_DOUBLE_EQ(state.total_busy_time(), before);
  EXPECT_FALSE(state.record(dag::EdgeId(1u)).scheduled());
  // Re-commit lands exactly where the uncommitted trial did.
  const double arrival =
      state.commit_edge_basic(dag::EdgeId(1u), f.route, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(arrival, 8.0);
}

TEST(ExclusiveNetworkState, DoubleCommitIsRejected) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  (void)state.commit_edge_basic(dag::EdgeId(0u), f.route, 0.0, 4.0);
  EXPECT_THROW(
      (void)state.commit_edge_basic(dag::EdgeId(0u), f.route, 0.0, 4.0),
      InternalError);
}

TEST(ExclusiveNetworkState, ProbeDoesNotMutate) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  const timeline::Placement p =
      state.probe_link(f.route[0], 1.0, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(p.start, 1.0);
  EXPECT_DOUBLE_EQ(p.finish, 5.0);
  EXPECT_DOUBLE_EQ(state.total_busy_time(), 0.0);
}

TEST(ExclusiveNetworkState, OptimalCommitDefersEarlierEdge) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  // Edge 0 crosses both hops starting at 0 with duration 2: hop 1 slot
  // [0, 2], hop 2 slot [0, 2]... cut-through gives hop2 t_es = 0 and
  // finish 2; its deferral slack on hop 1 is 0 minus... the last hop has
  // dt = 0, the first hop dt = min(es2 - es1, f2 - f1) = 0 here. Use a
  // route where the second hop waits, creating slack on the first.
  net::Topology topo;
  const net::NodeId a = topo.add_processor();
  const net::NodeId b = topo.add_processor();
  const net::NodeId c = topo.add_processor();
  const net::NodeId s = topo.add_switch();
  const net::LinkId a_s = topo.add_duplex_link(a, s, 1.0).first;
  const net::LinkId s_b = topo.add_duplex_link(s, b, 1.0).first;
  const net::LinkId s_c = topo.add_duplex_link(s, c, 1.0).first;
  (void)s_c;

  ExclusiveNetworkState st(topo, 4);
  // Block the second hop s->b during [0, 10] with a direct transfer from
  // another edge (route of length 1 starting at the switch is not
  // possible; use an edge b<-s? Instead occupy s_b via an a->b edge that
  // ships early).
  (void)st.commit_edge_basic(dag::EdgeId(0u), {s_b}, 0.0, 10.0);
  // Edge 1 a->b: hop a_s could run [0, 3], but hop s_b is busy until 10,
  // so its slot is [10, 13]; under link causality hop a_s keeps slack.
  (void)st.commit_edge_optimal(dag::EdgeId(1u), {a_s, s_b}, 0.0, 3.0);
  const EdgeRecord& r1 = st.record(dag::EdgeId(1u));
  ASSERT_EQ(r1.occupations.size(), 2u);
  EXPECT_DOUBLE_EQ(r1.occupations[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r1.occupations[1].start, 10.0);
  EXPECT_DOUBLE_EQ(r1.occupations[1].finish, 13.0);

  // Edge 2 also needs a_s at time 0 for 4 units: optimal insertion may
  // defer edge 1's first-hop slot (slack towards its waiting second hop)
  // and start at 0.
  (void)st.commit_edge_optimal(dag::EdgeId(2u), {a_s}, 0.0, 4.0);
  const EdgeRecord& r2 = st.record(dag::EdgeId(2u));
  EXPECT_DOUBLE_EQ(r2.occupations[0].start, 0.0);
  // Edge 1's first hop slid but its second hop (and thus arrival) kept.
  const EdgeRecord& r1_after = st.record(dag::EdgeId(1u));
  EXPECT_GE(r1_after.occupations[0].start, 4.0 - 1e-9);
  EXPECT_DOUBLE_EQ(r1_after.occupations[1].finish, 13.0);
}

TEST(ExclusiveNetworkState, CommitPacketStoreAndForward) {
  Fixture f;
  ExclusiveNetworkState state(f.topo, 4);
  const double first =
      state.commit_packet(dag::EdgeId(0u), f.route, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(first, 5.0);  // [1,3] then [3,5]
  const double second =
      state.commit_packet(dag::EdgeId(0u), f.route, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(second, 7.0);  // hop1 [3,5], hop2 [5,7]: pipelined
  const EdgeRecord& record = state.record(dag::EdgeId(0u));
  EXPECT_EQ(record.occupations.size(), 4u);
}

TEST(BandwidthNetworkState, CommitSharesAndProbes) {
  Fixture f;
  BandwidthNetworkState state(f.topo);
  EXPECT_DOUBLE_EQ(state.probe_finish(f.route[0], 0.0, 0.0, 4.0), 4.0);
  const auto transfer = state.commit_edge(f.route, 0.0, 4.0);
  EXPECT_DOUBLE_EQ(transfer.arrival, 4.0);
  // The link is now saturated during [0, 4]; a new probe sees that.
  EXPECT_DOUBLE_EQ(state.probe_first_flow(f.route[0], 1.0), 4.0);
  EXPECT_DOUBLE_EQ(state.probe_finish(f.route[0], 0.0, 0.0, 4.0), 8.0);
}

TEST(Models, IdleRouteArrivalsMatchClosedForms) {
  // With no contention the two communication models have closed forms:
  //   fluid:     ready + v / min(speed)           (true cut-through)
  //   exclusive: ready + v·(1/s1 + Σ max(0, 1/s_k − 1/s_{k−1}))
  // The exclusive virtual-start slots pay for every slow→fast→slow speed
  // alternation (the fast middle hop's slot only opens late), so fluid
  // never arrives later than exclusive.
  Rng rng(2006);
  for (int round = 0; round < 60; ++round) {
    const std::size_t hops =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    net::Topology topo;
    net::NodeId at = topo.add_processor();
    net::Route route;
    std::vector<double> speeds;
    for (std::size_t h = 0; h < hops; ++h) {
      const net::NodeId next = (h + 1 == hops)
                                   ? topo.add_processor()
                                   : topo.add_switch();
      speeds.push_back(static_cast<double>(rng.uniform_int(1, 10)));
      route.push_back(
          topo.add_duplex_link(at, next, speeds.back()).first);
      at = next;
    }
    const double ready = rng.uniform_real(0.0, 100.0);
    const double volume = rng.uniform_real(0.5, 500.0);

    ExclusiveNetworkState exclusive(topo, 1);
    const double arrival_exclusive = exclusive.commit_edge_basic(
        dag::EdgeId(0u), route, ready, volume);

    BandwidthNetworkState fluid(topo);
    const double arrival_fluid =
        fluid.commit_edge(route, ready, volume).arrival;

    const double min_speed =
        *std::min_element(speeds.begin(), speeds.end());
    double exclusive_time = volume / speeds.front();
    for (std::size_t k = 1; k < speeds.size(); ++k) {
      exclusive_time +=
          std::max(0.0, volume / speeds[k] - volume / speeds[k - 1]);
    }
    EXPECT_NEAR(arrival_exclusive, ready + exclusive_time,
                1e-6 * (ready + exclusive_time))
        << "round " << round;
    EXPECT_NEAR(arrival_fluid, ready + volume / min_speed,
                1e-5 * (ready + volume / min_speed))
        << "round " << round;
    EXPECT_LE(arrival_fluid, arrival_exclusive + 1e-6)
        << "round " << round;
  }
}

TEST(MachineState, AppendAndInsertionPolicies) {
  Fixture f;
  MachineState machines(f.topo);
  machines.commit(f.p0, dag::TaskId(0u), 0.0, 2.0);
  machines.commit(f.p0, dag::TaskId(1u), 10.0, 2.0);
  EXPECT_DOUBLE_EQ(machines.finish_time(f.p0), 12.0);
  EXPECT_DOUBLE_EQ(machines.append_start(f.p0, 1.0), 12.0);
  EXPECT_DOUBLE_EQ(machines.earliest_start(f.p0, 1.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(machines.start_for(f.p0, 1.0, 3.0, true), 2.0);
  EXPECT_DOUBLE_EQ(machines.start_for(f.p0, 1.0, 3.0, false), 12.0);
  EXPECT_DOUBLE_EQ(machines.finish_time(f.p1), 0.0);
}

}  // namespace
}  // namespace edgesched::sched
