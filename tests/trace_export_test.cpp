#include "sched/trace_export.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

struct Fixture {
  dag::TaskGraph graph = dag::fork(2, 20.0, 6.0);
  net::Topology topo;
  Schedule schedule;

  Fixture()
      : topo([] {
          Rng rng(1);
          return net::switched_star(3, net::SpeedConfig{}, rng);
        }()),
        schedule(BasicAlgorithm{}.schedule(graph, topo)) {}
};

TEST(ChromeTrace, IsWellFormedJson) {
  const Fixture f;
  const std::string json = to_chrome_trace(f.graph, f.topo, f.schedule);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Balanced braces and brackets (crude but effective well-formedness).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ChromeTrace, ContainsEveryTask) {
  const Fixture f;
  const std::string json = to_chrome_trace(f.graph, f.topo, f.schedule);
  for (dag::TaskId t : f.graph.all_tasks()) {
    EXPECT_NE(json.find("\"" + f.graph.task(t).name + "\""),
              std::string::npos)
        << f.graph.task(t).name;
  }
}

TEST(ChromeTrace, ContainsLinkRowsForRemoteEdges) {
  const Fixture f;
  bool any_remote = false;
  for (dag::EdgeId e : f.graph.all_edges()) {
    any_remote = any_remote ||
                 f.schedule.communication(e).kind ==
                     EdgeCommunication::Kind::kExclusive;
  }
  ASSERT_TRUE(any_remote);
  const std::string json = to_chrome_trace(f.graph, f.topo, f.schedule);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("->"), std::string::npos);
}

TEST(ChromeTrace, EscapesNames) {
  dag::TaskGraph graph;
  (void)graph.add_task(1.0, "we\"ird");
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(1, net::SpeedConfig{}, rng);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  const std::string json = to_chrome_trace(graph, topo, s);
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
}

TEST(AsciiGantt, PaintsTasksAndLinks) {
  const Fixture f;
  const std::string gantt =
      to_ascii_gantt(f.graph, f.topo, f.schedule);
  EXPECT_NE(gantt.find("makespan="), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);  // task execution
  EXPECT_NE(gantt.find('='), std::string::npos);  // link occupation
  // One row per processor.
  for (net::NodeId p : f.topo.processors()) {
    EXPECT_NE(gantt.find(f.topo.node(p).name), std::string::npos);
  }
}

TEST(AsciiGantt, LinksCanBeSuppressed) {
  const Fixture f;
  GanttOptions options;
  options.include_links = false;
  const std::string gantt =
      to_ascii_gantt(f.graph, f.topo, f.schedule, options);
  // The header line contains "makespan=..."; no '=' may appear after it.
  EXPECT_EQ(gantt.find('=', gantt.find('\n')), std::string::npos);
}

TEST(AsciiGantt, WorksForBandwidthSchedules) {
  const Fixture f;
  const Schedule bbsa = Bbsa{}.schedule(f.graph, f.topo);
  validate_or_throw(f.graph, f.topo, bbsa);
  const std::string gantt = to_ascii_gantt(f.graph, f.topo, bbsa);
  EXPECT_NE(gantt.find("BBSA"), std::string::npos);
}

TEST(AsciiGantt, EmptyScheduleDoesNotCrash) {
  const dag::TaskGraph graph;
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(1, net::SpeedConfig{}, rng);
  const Schedule s("X", 0, 0);
  const std::string gantt = to_ascii_gantt(graph, topo, s);
  EXPECT_NE(gantt.find("makespan=0"), std::string::npos);
}

}  // namespace
}  // namespace edgesched::sched
