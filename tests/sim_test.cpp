#include <gtest/gtest.h>

#include <sstream>

#include "dag/properties.hpp"
#include "sim/runner.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/workload.hpp"

namespace edgesched::sim {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(ExperimentConfig, PaperAxes) {
  const auto ccrs = ExperimentConfig::paper_ccr_values();
  ASSERT_EQ(ccrs.size(), 19u);
  EXPECT_DOUBLE_EQ(ccrs.front(), 0.1);
  EXPECT_DOUBLE_EQ(ccrs[9], 1.0);
  EXPECT_DOUBLE_EQ(ccrs.back(), 10.0);
  const auto procs = ExperimentConfig::paper_processor_counts();
  EXPECT_EQ(procs, (std::vector<std::size_t>{2, 4, 8, 16, 32, 64, 128}));
}

TEST(ExperimentConfig, DefaultsAreScaledDown) {
  const ExperimentConfig config = ExperimentConfig::defaults(false);
  EXPECT_FALSE(config.heterogeneous);
  EXPECT_GE(config.tasks_min, 1u);
  EXPECT_LE(config.tasks_max, 1000u);
  EXPECT_GE(config.repetitions, 1u);
}

TEST(MakeInstance, RespectsParameters) {
  ExperimentConfig config = ExperimentConfig::defaults(false);
  config.tasks_min = 30;
  config.tasks_max = 50;
  Rng rng(1);
  const Instance instance = make_instance(config, 8, 2.0, rng);
  EXPECT_GE(instance.graph.num_tasks(), 30u);
  EXPECT_LE(instance.graph.num_tasks(), 50u);
  EXPECT_EQ(instance.topology.num_processors(), 8u);
  EXPECT_NEAR(dag::communication_computation_ratio(instance.graph), 2.0,
              1e-9);
  EXPECT_TRUE(instance.topology.processors_connected());
}

TEST(MakeInstance, HeterogeneousSpeeds) {
  ExperimentConfig config = ExperimentConfig::defaults(true);
  config.tasks_min = 20;
  config.tasks_max = 20;
  Rng rng(2);
  const Instance instance = make_instance(config, 4, 1.0, rng);
  bool any_fast = false;
  for (net::NodeId p : instance.topology.processors()) {
    any_fast =
        any_fast || instance.topology.processor_speed(p) > 1.0;
  }
  EXPECT_TRUE(any_fast);
}

TEST(RunInstance, ValidatesAllSchedulers) {
  ExperimentConfig config = ExperimentConfig::defaults(false);
  config.tasks_min = 20;
  config.tasks_max = 25;
  Rng rng(3);
  const Instance instance = make_instance(config, 4, 3.0, rng);
  const auto schedulers = sched::all_schedulers();
  const InstanceResult result =
      run_instance(instance, schedulers, /*validate_schedules=*/true);
  ASSERT_EQ(result.makespans.size(), 3u);
  for (double m : result.makespans) {
    EXPECT_GT(m, 0.0);
  }
}

TEST(ImprovementPct, Formula) {
  EXPECT_DOUBLE_EQ(improvement_pct(100.0, 80.0), 20.0);
  EXPECT_DOUBLE_EQ(improvement_pct(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_pct(100.0, 120.0), -20.0);
  EXPECT_DOUBLE_EQ(improvement_pct(0.0, 10.0), 0.0);
}

ExperimentConfig tiny_config() {
  ExperimentConfig config = ExperimentConfig::defaults(false);
  config.ccr_values = {0.5, 5.0};
  config.processor_counts = {4};
  config.tasks_min = 15;
  config.tasks_max = 25;
  config.repetitions = 2;
  return config;
}

TEST(Sweep, CcrSweepShape) {
  std::size_t progress_calls = 0;
  const auto points = sweep_ccr(
      tiny_config(), /*validate_schedules=*/true,
      [&](std::size_t done, std::size_t total) {
        ++progress_calls;
        EXPECT_LE(done, total);
      });
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].x, 0.5);
  EXPECT_DOUBLE_EQ(points[1].x, 5.0);
  EXPECT_EQ(points[0].oihsa_improvement_pct.count(), 2u);
  EXPECT_EQ(progress_calls, 4u);
}

TEST(Sweep, ProcessorSweepShape) {
  ExperimentConfig config = tiny_config();
  config.processor_counts = {2, 4};
  config.ccr_values = {1.0};
  const auto points = sweep_processors(config, true);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].x, 2.0);
  EXPECT_DOUBLE_EQ(points[1].x, 4.0);
}

TEST(Sweep, DeterministicForSeed) {
  const auto a = sweep_ccr(tiny_config(), false);
  const auto b = sweep_ccr(tiny_config(), false);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].oihsa_improvement_pct.mean(),
                     b[i].oihsa_improvement_pct.mean());
    EXPECT_DOUBLE_EQ(a[i].bbsa_improvement_pct.mean(),
                     b[i].bbsa_improvement_pct.mean());
  }
}

TEST(Tables, PrintAndCsv) {
  const auto points = sweep_ccr(tiny_config(), false);
  std::ostringstream table;
  print_sweep(table, "CCR", points);
  EXPECT_NE(table.str().find("OIHSA vs BA"), std::string::npos);
  std::ostringstream csv;
  write_sweep_csv(csv, "ccr", points);
  EXPECT_NE(csv.str().find("ccr,oihsa_improvement_pct"),
            std::string::npos);
  std::ostringstream chart;
  print_sweep_chart(chart, "CCR", points);
  EXPECT_NE(chart.str().find("OIHSA"), std::string::npos);
}

}  // namespace
}  // namespace edgesched::sim
