// Property suite: every algorithm × topology family × seed must produce a
// schedule that passes the full independent validator, plus generic
// invariants (determinism, lower bounds, improvement sanity).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/packetized.hpp"
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

enum class TopologyFamily {
  kFullyConnected,
  kStar,
  kRing,
  kFatTree,
  kRandomWan,
  kRandomWanHetero,
  kBus,
};

std::string family_name(TopologyFamily family) {
  switch (family) {
    case TopologyFamily::kFullyConnected: return "FullyConnected";
    case TopologyFamily::kStar: return "Star";
    case TopologyFamily::kRing: return "Ring";
    case TopologyFamily::kFatTree: return "FatTree";
    case TopologyFamily::kRandomWan: return "RandomWan";
    case TopologyFamily::kRandomWanHetero: return "RandomWanHetero";
    case TopologyFamily::kBus: return "Bus";
  }
  return "?";
}

net::Topology build(TopologyFamily family, Rng& rng) {
  net::SpeedConfig speeds;
  switch (family) {
    case TopologyFamily::kFullyConnected:
      return net::fully_connected(4, speeds, rng);
    case TopologyFamily::kStar:
      return net::switched_star(5, speeds, rng);
    case TopologyFamily::kRing:
      return net::ring(5, speeds, rng);
    case TopologyFamily::kFatTree:
      return net::fat_tree(2, 3, speeds, rng);
    case TopologyFamily::kRandomWan: {
      net::RandomWanParams params;
      params.num_processors = 8;
      return net::random_wan(params, rng);
    }
    case TopologyFamily::kRandomWanHetero: {
      net::RandomWanParams params;
      params.num_processors = 8;
      params.speeds.heterogeneous = true;
      return net::random_wan(params, rng);
    }
    case TopologyFamily::kBus:
      return net::bus(4, speeds, rng);
  }
  throw std::invalid_argument("unknown family");
}

enum class Algo { kBa, kOihsa, kBbsa, kPacketBa };

std::string algo_name(Algo algo) {
  switch (algo) {
    case Algo::kBa: return "BA";
    case Algo::kOihsa: return "OIHSA";
    case Algo::kBbsa: return "BBSA";
    case Algo::kPacketBa: return "PacketBA";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(Algo algo) {
  switch (algo) {
    case Algo::kBa: return std::make_unique<BasicAlgorithm>();
    case Algo::kOihsa: return std::make_unique<Oihsa>();
    case Algo::kBbsa: return std::make_unique<Bbsa>();
    case Algo::kPacketBa: return std::make_unique<PacketizedBa>();
  }
  throw std::invalid_argument("unknown algo");
}

using Param = std::tuple<Algo, TopologyFamily, std::uint64_t, double>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const Algo algo = std::get<0>(info.param);
  const TopologyFamily family = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  const double ccr = std::get<3>(info.param);
  return algo_name(algo) + "_" + family_name(family) + "_s" +
         std::to_string(seed) + "_ccr" +
         std::to_string(static_cast<int>(ccr * 10));
}

class ScheduleProperty : public ::testing::TestWithParam<Param> {};

TEST_P(ScheduleProperty, ValidDeterministicAndBounded) {
  const auto [algo, family, seed, ccr] = GetParam();
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks =
      static_cast<std::size_t>(rng.uniform_int(15, 45));
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, ccr);
  const net::Topology topo = build(family, rng);
  const auto scheduler = make_scheduler(algo);

  const Schedule s = scheduler->schedule(graph, topo);
  const auto violations = validate(graph, topo, s);
  EXPECT_TRUE(violations.empty())
      << algo_name(algo) << " on " << family_name(family) << ": "
      << (violations.empty() ? "" : violations.front());

  // Determinism: identical inputs give an identical makespan.
  const Schedule again = scheduler->schedule(graph, topo);
  EXPECT_DOUBLE_EQ(s.makespan(), again.makespan());

  // Every task placed, finish = makespan at the latest task.
  double latest = 0.0;
  for (dag::TaskId t : graph.all_tasks()) {
    EXPECT_TRUE(s.task(t).placed());
    latest = std::max(latest, s.task(t).finish);
  }
  EXPECT_DOUBLE_EQ(latest, s.makespan());

  // Lower bound: the computation-only critical path divided by the
  // fastest processor speed.
  double fastest = 0.0;
  for (net::NodeId p : topo.processors()) {
    fastest = std::max(fastest, topo.processor_speed(p));
  }
  const auto bl = dag::bottom_levels_computation_only(graph);
  const double bound =
      *std::max_element(bl.begin(), bl.end()) / fastest;
  EXPECT_GE(s.makespan(), bound - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleProperty,
    ::testing::Combine(
        ::testing::Values(Algo::kBa, Algo::kOihsa, Algo::kBbsa,
                          Algo::kPacketBa),
        ::testing::Values(TopologyFamily::kFullyConnected,
                          TopologyFamily::kStar, TopologyFamily::kRing,
                          TopologyFamily::kFatTree,
                          TopologyFamily::kRandomWan,
                          TopologyFamily::kRandomWanHetero,
                          TopologyFamily::kBus),
        ::testing::Values(1u, 2u, 3u),
        ::testing::Values(0.5, 5.0)),
    param_name);

}  // namespace
}  // namespace edgesched::sched
