// exec merged Perfetto trace: planned vs executed tracks, fault and
// recovery instants, run-ID correlation on every event.
#include "exec/trace_merge.hpp"

#include <gtest/gtest.h>

#include <string>

#include "dag/generators.hpp"
#include "exec/executor.hpp"
#include "net/builders.hpp"
#include "obs/json.hpp"
#include "obs/run_context.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace edgesched::exec {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
};

Instance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = 16;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 4;
  net::Topology topo = net::random_wan(wan, rng);
  return Instance{std::move(graph), std::move(topo)};
}

TEST(TraceMerge, NominalRunHasPlannedAndExecutedTracks) {
  const Instance inst = make_instance(21);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule);
  ASSERT_TRUE(report.completed);

  const obs::JsonValue trace = obs::JsonValue::parse(
      to_merged_trace(inst.graph, inst.topo, schedule, report));
  const obs::JsonValue& events = trace.at("traceEvents");
  ASSERT_GT(events.size(), 0u);

  std::size_t planned = 0;
  std::size_t executed = 0;
  bool planned_name = false;
  bool executed_name = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::JsonValue& e = events.at(i);
    const std::string& ph = e.at("ph").as_string();
    const double pid = e.at("pid").as_number();
    if (ph == "X") {
      // Every span carries the report's run ID.
      EXPECT_DOUBLE_EQ(e.at("args").at("run_id").as_number(),
                       static_cast<double>(report.run_id));
      if (pid == 0.0) {
        ++planned;
      } else if (pid == 1.0) {
        ++executed;
      }
    } else if (ph == "M" && e.at("name").as_string() == "process_name") {
      const std::string& name = e.at("args").at("name").as_string();
      if (pid == 0.0) {
        planned_name =
            name.find("planned [" + schedule.algorithm() + "]") !=
            std::string::npos;
      } else if (pid == 1.0) {
        executed_name = name == "executed";
      }
    }
  }
  // One planned span per placed task, one executed span per run task.
  EXPECT_EQ(planned, inst.graph.num_tasks());
  EXPECT_EQ(executed, inst.graph.num_tasks());
  EXPECT_TRUE(planned_name);
  EXPECT_TRUE(executed_name);
}

TEST(TraceMerge, FaultyRunEmitsInstantsOnTheEventsProcess) {
  const Instance inst = make_instance(22);
  const sched::Schedule schedule =
      sched::make_scheduler("bbsa")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  HazardConfig hazard;
  hazard.processor_rate = 0.01;
  hazard.horizon = 4.0 * schedule.makespan();
  hazard.mean_repair = 0.05 * schedule.makespan();
  hazard.seed = 5;
  options.faults = FaultPlan::sampled(inst.topo, hazard);
  options.policy = RecoveryPolicy::kReschedule;
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_FALSE(report.faults.empty()) << "fault rate too low for the test";

  const obs::JsonValue trace = obs::JsonValue::parse(
      to_merged_trace(inst.graph, inst.topo, schedule, report));
  const obs::JsonValue& events = trace.at("traceEvents");
  std::size_t faults = 0;
  std::size_t recoveries = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::JsonValue& e = events.at(i);
    if (e.at("ph").as_string() != "i") {
      continue;
    }
    EXPECT_DOUBLE_EQ(e.at("pid").as_number(), 2.0);
    EXPECT_DOUBLE_EQ(e.at("args").at("run_id").as_number(),
                     static_cast<double>(report.run_id));
    if (e.at("args").contains("kind")) {
      ++faults;
    } else if (e.at("args").contains("action")) {
      ++recoveries;
    }
  }
  EXPECT_EQ(faults, report.faults.size());
  EXPECT_EQ(recoveries, report.recoveries.size());
  EXPECT_GT(recoveries, 0u);
}

TEST(TraceMerge, RunIdMatchesTheCallersScope) {
  const Instance inst = make_instance(23);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);
  const std::uint64_t run = obs::mint_run_id();
  ExecutionReport report;
  {
    const obs::ScopedRunId scope(run);
    report = execute(inst.graph, inst.topo, schedule);
  }
  EXPECT_EQ(report.run_id, run);
  const std::string text =
      to_merged_trace(inst.graph, inst.topo, schedule, report);
  EXPECT_NE(text.find("\"run_id\":" + std::to_string(run)),
            std::string::npos);
}

TEST(TraceMerge, DeterministicForSameReport) {
  const Instance inst = make_instance(24);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule);
  EXPECT_EQ(to_merged_trace(inst.graph, inst.topo, schedule, report),
            to_merged_trace(inst.graph, inst.topo, schedule, report));
}

}  // namespace
}  // namespace edgesched::exec
