#include "sim/perturbation.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/oihsa.hpp"

namespace edgesched::sim {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
  sched::Schedule schedule;
};

Instance make(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 2.0);
  net::RandomWanParams wan;
  wan.num_processors = 4;
  net::Topology topo = net::random_wan(wan, rng);
  sched::Schedule schedule = sched::Oihsa{}.schedule(graph, topo);
  return Instance{std::move(graph), std::move(topo),
                  std::move(schedule)};
}

TEST(Robustness, ZeroSpreadReproducesNominal) {
  const Instance inst = make(1);
  PerturbationOptions options;
  options.spread = 0.0;
  options.trials = 3;
  const RobustnessReport report = assess_robustness(
      inst.graph, inst.topo, inst.schedule, options);
  EXPECT_NEAR(report.perturbed.mean(), report.nominal_makespan, 1e-9);
  EXPECT_NEAR(report.mean_slowdown, 1.0, 1e-9);
  EXPECT_NEAR(report.worst_slowdown, 1.0, 1e-9);
}

TEST(Robustness, NoiseChangesMakespans) {
  const Instance inst = make(2);
  PerturbationOptions options;
  options.spread = 0.3;
  options.trials = 20;
  const RobustnessReport report = assess_robustness(
      inst.graph, inst.topo, inst.schedule, options);
  EXPECT_GT(report.perturbed.stddev(), 0.0);
  EXPECT_GE(report.worst_slowdown, report.mean_slowdown);
  // ±30 % task noise cannot triple the makespan of a fixed assignment.
  EXPECT_LT(report.worst_slowdown, 3.0);
  EXPECT_GT(report.mean_slowdown, 0.5);
}

TEST(Robustness, DeterministicForSeed) {
  const Instance inst = make(3);
  const RobustnessReport a =
      assess_robustness(inst.graph, inst.topo, inst.schedule);
  const RobustnessReport b =
      assess_robustness(inst.graph, inst.topo, inst.schedule);
  EXPECT_DOUBLE_EQ(a.perturbed.mean(), b.perturbed.mean());
  EXPECT_DOUBLE_EQ(a.worst_slowdown, b.worst_slowdown);
}

TEST(Robustness, RejectsBadOptions) {
  const Instance inst = make(4);
  PerturbationOptions bad;
  bad.spread = 1.0;
  EXPECT_THROW((void)assess_robustness(inst.graph, inst.topo,
                                       inst.schedule, bad),
               std::invalid_argument);
  bad = PerturbationOptions{};
  bad.trials = 0;
  EXPECT_THROW((void)assess_robustness(inst.graph, inst.topo,
                                       inst.schedule, bad),
               std::invalid_argument);
}

TEST(Robustness, ComparableAcrossAlgorithms) {
  // Smoke: both list schedulers produce assignments the harness can
  // assess, and the reports are internally consistent.
  const Instance inst = make(5);
  const sched::Schedule ba =
      sched::BasicAlgorithm{}.schedule(inst.graph, inst.topo);
  for (const sched::Schedule* s : {&inst.schedule, &ba}) {
    const RobustnessReport report =
        assess_robustness(inst.graph, inst.topo, *s);
    EXPECT_GT(report.nominal_makespan, 0.0);
    EXPECT_EQ(report.perturbed.count(), PerturbationOptions{}.trials);
  }
}

}  // namespace
}  // namespace edgesched::sim
