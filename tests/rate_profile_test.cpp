#include "timeline/rate_profile.hpp"

#include <gtest/gtest.h>

namespace edgesched::timeline {
namespace {

TEST(RateProfile, EmptyProfile) {
  RateProfile p;
  EXPECT_TRUE(p.empty());
  EXPECT_DOUBLE_EQ(p.volume(), 0.0);
  EXPECT_DOUBLE_EQ(p.cumulative(10.0), 0.0);
  EXPECT_DOUBLE_EQ(p.rate_at(5.0), 0.0);
}

TEST(RateProfile, SingleSegment) {
  RateProfile p;
  p.append(1.0, 3.0, 2.0);
  EXPECT_DOUBLE_EQ(p.volume(), 4.0);
  EXPECT_DOUBLE_EQ(p.start_time(), 1.0);
  EXPECT_DOUBLE_EQ(p.finish_time(), 3.0);
  EXPECT_DOUBLE_EQ(p.rate_at(2.0), 2.0);
  EXPECT_DOUBLE_EQ(p.rate_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(p.rate_at(3.5), 0.0);
}

TEST(RateProfile, CumulativeIsPiecewiseLinear) {
  RateProfile p;
  p.append(0.0, 2.0, 1.0);   // 2 units
  p.append(4.0, 6.0, 3.0);   // 6 units after a gap
  EXPECT_DOUBLE_EQ(p.cumulative(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p.cumulative(1.0), 1.0);
  EXPECT_DOUBLE_EQ(p.cumulative(3.0), 2.0);  // inside the gap
  EXPECT_DOUBLE_EQ(p.cumulative(5.0), 5.0);
  EXPECT_DOUBLE_EQ(p.cumulative(100.0), 8.0);
  EXPECT_DOUBLE_EQ(p.volume(), 8.0);
}

TEST(RateProfile, MergesContiguousEqualRates) {
  RateProfile p;
  p.append(0.0, 2.0, 1.5);
  p.append(2.0, 5.0, 1.5);
  EXPECT_EQ(p.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(p.segments()[0].end, 5.0);
}

TEST(RateProfile, KeepsDistinctRatesSeparate) {
  RateProfile p;
  p.append(0.0, 2.0, 1.0);
  p.append(2.0, 4.0, 2.0);
  EXPECT_EQ(p.segments().size(), 2u);
}

TEST(RateProfile, RejectsDisorderedAppend) {
  RateProfile p;
  p.append(5.0, 6.0, 1.0);
  EXPECT_THROW(p.append(0.0, 1.0, 1.0), InternalError);
  EXPECT_THROW(p.append(6.0, 6.0, 1.0), InternalError);
  EXPECT_THROW(p.append(6.0, 7.0, 0.0), InternalError);
}

TEST(RateProfile, Breakpoints) {
  RateProfile p;
  p.append(0.0, 2.0, 1.0);
  p.append(4.0, 6.0, 3.0);
  EXPECT_EQ(p.breakpoints(), (std::vector<double>{0.0, 2.0, 4.0, 6.0}));
}

TEST(RateProfile, BreakpointsOfAbuttingSegments) {
  RateProfile p;
  p.append(0.0, 2.0, 1.0);
  p.append(2.0, 4.0, 2.0);
  EXPECT_EQ(p.breakpoints(), (std::vector<double>{0.0, 2.0, 4.0}));
}

}  // namespace
}  // namespace edgesched::timeline
