#include "svc/scheduler_service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"
#include "util/rng.hpp"

namespace edgesched::svc {
namespace {

std::shared_ptr<const dag::TaskGraph> shared_graph(dag::TaskGraph graph) {
  return std::make_shared<const dag::TaskGraph>(std::move(graph));
}

std::shared_ptr<const net::Topology> shared_star(std::size_t processors) {
  Rng rng(11);
  return std::make_shared<const net::Topology>(
      net::switched_star(processors, net::SpeedConfig{}, rng));
}

TEST(SchedulerService, ComputesScheduleMatchingDirectCall) {
  SchedulerService service({.threads = 2, .cache_capacity = 16});
  const auto graph = shared_graph(dag::fork_join(5, 2.0, 4.0));
  const auto topo = shared_star(3);

  const auto result = service.submit(graph, topo, "oihsa").get();
  ASSERT_NE(result, nullptr);
  const sched::Schedule direct = sched::Oihsa{}.schedule(*graph, *topo);
  EXPECT_DOUBLE_EQ(result->makespan(), direct.makespan());
  EXPECT_EQ(result->algorithm(), "OIHSA");
}

TEST(SchedulerService, SecondIdenticalSubmitIsACacheHit) {
  SchedulerService service({.threads = 2, .cache_capacity = 16});
  const auto graph = shared_graph(dag::fork_join(5, 2.0, 4.0));
  const auto topo = shared_star(3);

  const auto first = service.submit(graph, topo, "bbsa").get();
  const auto second = service.submit(graph, topo, "bbsa").get();
  EXPECT_EQ(first, second);  // the very same cached object
  EXPECT_EQ(service.cache().stats().hits, 1u);
  EXPECT_EQ(service.cache().stats().misses, 1u);
  EXPECT_EQ(service.metrics().counter("svc_cache_hits_total").value(), 1u);
  EXPECT_EQ(service.metrics().counter("svc_requests_total").value(), 2u);
}

TEST(SchedulerService, EquivalentObjectsShareCacheEntries) {
  // Content addressing: a structurally identical graph built separately
  // hits the cache entry of the first one.
  SchedulerService service({.threads = 1, .cache_capacity = 16});
  const auto topo = shared_star(3);
  const auto a = shared_graph(dag::chain(6, 1.0, 2.0));
  const auto b = shared_graph(dag::chain(6, 1.0, 2.0));
  const auto first = service.submit(a, topo, "ba").get();
  const auto second = service.submit(b, topo, "ba").get();
  EXPECT_EQ(first, second);
}

TEST(SchedulerService, UnknownAlgorithmThrowsAtSubmit) {
  SchedulerService service({.threads = 1});
  const auto graph = shared_graph(dag::chain(3));
  const auto topo = shared_star(2);
  EXPECT_THROW(service.submit(graph, topo, "quantum"),
               std::invalid_argument);
  EXPECT_THROW(SchedulerService::make_scheduler(""),
               std::invalid_argument);
}

TEST(SchedulerService, FactoryCoversAllAlgorithms) {
  EXPECT_EQ(SchedulerService::make_scheduler("ba")->name(), "BA");
  EXPECT_EQ(SchedulerService::make_scheduler("OIHSA")->name(), "OIHSA");
  EXPECT_EQ(SchedulerService::make_scheduler("bbsa")->name(), "BBSA");
  EXPECT_EQ(SchedulerService::make_scheduler("classic")->name(), "CLASSIC");
  EXPECT_EQ(SchedulerService::make_scheduler("packet")->name(),
            "PACKET-BA");
}

TEST(SchedulerService, SchedulerFailuresPropagateThroughFuture) {
  SchedulerService service({.threads = 1});
  dag::TaskGraph cyclic;
  const auto a = cyclic.add_task(1.0);
  const auto b = cyclic.add_task(1.0);
  cyclic.add_edge(a, b, 1.0);
  cyclic.add_edge(b, a, 1.0);
  auto future = service.submit(shared_graph(std::move(cyclic)),
                               shared_star(2), "ba");
  EXPECT_THROW(future.get(), std::invalid_argument);
  EXPECT_EQ(service.metrics().counter("svc_failures_total").value(), 1u);
}

TEST(SchedulerService, ConcurrentSubmissionsAllValid) {
  SchedulerService service(
      {.threads = 4, .cache_capacity = 64, .validate = true});
  const auto topo = shared_star(4);
  Rng rng(3);
  std::vector<std::shared_ptr<const dag::TaskGraph>> graphs;
  for (int i = 0; i < 6; ++i) {
    dag::LayeredDagParams params;
    params.num_tasks = 15;
    graphs.push_back(shared_graph(dag::random_layered(params, rng)));
  }
  std::vector<std::future<SchedulerService::SchedulePtr>> futures;
  for (const auto& algorithm : {"ba", "oihsa", "bbsa"}) {
    for (const auto& graph : graphs) {
      futures.push_back(service.submit(graph, topo, algorithm));
    }
  }
  for (auto& future : futures) {
    const auto schedule = future.get();
    ASSERT_NE(schedule, nullptr);
    EXPECT_GT(schedule->makespan(), 0.0);
  }
  EXPECT_EQ(service.metrics().counter("svc_requests_total").value(),
            3u * 6u);
  EXPECT_EQ(
      service.metrics().histogram("svc_schedule_seconds").count(),
      3u * 6u);
}

TEST(SchedulerService, MetricsTextDumpListsServiceMetrics) {
  SchedulerService service({.threads = 1});
  const auto schedule = service.schedule_now(
      dag::chain(4, 1.0, 1.0), *shared_star(2), "oihsa");
  ASSERT_NE(schedule, nullptr);
  const std::string dump = service.metrics().text_dump();
  EXPECT_NE(dump.find("counter svc_requests_total 1"), std::string::npos);
  EXPECT_NE(dump.find("counter svc_cache_misses_total 1"),
            std::string::npos);
  EXPECT_NE(dump.find("histogram svc_schedule_seconds count 1"),
            std::string::npos);
  EXPECT_NE(dump.find("le +inf 1"), std::string::npos);
}

}  // namespace
}  // namespace edgesched::svc
