#include "sched/priorities.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"

namespace edgesched::sched {
namespace {

dag::TaskGraph diamond_graph() {
  dag::TaskGraph g;
  const dag::TaskId a = g.add_task(2.0);
  const dag::TaskId b = g.add_task(3.0);
  const dag::TaskId c = g.add_task(4.0);
  const dag::TaskId d = g.add_task(5.0);
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 2.0);
  g.add_edge(b, d, 3.0);
  g.add_edge(c, d, 4.0);
  return g;
}

TEST(Priorities, BottomLevelSchemeMatchesProperties) {
  const dag::TaskGraph g = diamond_graph();
  EXPECT_EQ(priorities(g, PriorityScheme::kBottomLevel),
            dag::bottom_levels(g));
  EXPECT_EQ(priorities(g, PriorityScheme::kBottomLevelComputationOnly),
            dag::bottom_levels_computation_only(g));
}

TEST(Priorities, TopPlusBottomIsSum) {
  const dag::TaskGraph g = diamond_graph();
  const auto combined =
      priorities(g, PriorityScheme::kTopLevelPlusBottomLevel);
  const auto bl = dag::bottom_levels(g);
  const auto tl = dag::top_levels(g);
  for (std::size_t i = 0; i < combined.size(); ++i) {
    EXPECT_DOUBLE_EQ(combined[i], bl[i] + tl[i]);
  }
}

TEST(ListOrder, RespectsPrecedence) {
  const dag::TaskGraph g = diamond_graph();
  const auto order = list_order(g);
  std::vector<std::size_t> position(g.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[order[i].index()] = i;
  }
  for (dag::EdgeId e : g.all_edges()) {
    EXPECT_LT(position[g.edge(e).src.index()],
              position[g.edge(e).dst.index()]);
  }
}

TEST(ListOrder, PicksHigherPriorityAmongReady) {
  // Diamond: bl(c) = 13 > bl(b) = 11, so c is scheduled before b.
  const dag::TaskGraph g = diamond_graph();
  const auto order = list_order(g);
  EXPECT_EQ(order, (std::vector<dag::TaskId>{
                       dag::TaskId(0u), dag::TaskId(2u), dag::TaskId(1u),
                       dag::TaskId(3u)}));
}

TEST(ListOrder, TieBreaksBySmallerId) {
  dag::TaskGraph g;
  (void)g.add_task(1.0);
  (void)g.add_task(1.0);
  (void)g.add_task(1.0);
  const auto order = list_order(g);
  EXPECT_EQ(order, (std::vector<dag::TaskId>{
                       dag::TaskId(0u), dag::TaskId(1u), dag::TaskId(2u)}));
}

TEST(ListOrder, ExplicitPriorityVector) {
  dag::TaskGraph g;
  (void)g.add_task(1.0);
  (void)g.add_task(1.0);
  (void)g.add_task(1.0);
  const auto order = list_order(g, std::vector<double>{1.0, 3.0, 2.0});
  EXPECT_EQ(order, (std::vector<dag::TaskId>{
                       dag::TaskId(1u), dag::TaskId(2u), dag::TaskId(0u)}));
  EXPECT_THROW((void)list_order(g, std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(ListOrder, LargeGraphIsPermutation) {
  Rng rng(3);
  dag::LayeredDagParams params;
  params.num_tasks = 200;
  const dag::TaskGraph g = dag::random_layered(params, rng);
  const auto order = list_order(g);
  ASSERT_EQ(order.size(), g.num_tasks());
  std::vector<bool> seen(g.num_tasks(), false);
  for (dag::TaskId t : order) {
    EXPECT_FALSE(seen[t.index()]);
    seen[t.index()] = true;
  }
}

}  // namespace
}  // namespace edgesched::sched
