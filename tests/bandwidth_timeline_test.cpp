#include "timeline/bandwidth_timeline.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace edgesched::timeline {
namespace {

TEST(BandwidthTimeline, FreshTimelineHasFullCapacity) {
  BandwidthTimeline tl(4.0);
  EXPECT_DOUBLE_EQ(tl.capacity(), 4.0);
  EXPECT_DOUBLE_EQ(tl.remaining_at(0.0), 4.0);
  EXPECT_DOUBLE_EQ(tl.remaining_at(1000.0), 4.0);
  EXPECT_THROW(BandwidthTimeline{0.0}, std::invalid_argument);
}

TEST(BandwidthTimeline, TransferFromUsesFullRate) {
  BandwidthTimeline tl(4.0);
  const RateProfile p = tl.transfer_from(2.0, 8.0);
  ASSERT_EQ(p.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(p.start_time(), 2.0);
  EXPECT_DOUBLE_EQ(p.finish_time(), 4.0);  // 8 volume at rate 4
  EXPECT_DOUBLE_EQ(p.volume(), 8.0);
}

TEST(BandwidthTimeline, ConsumeReducesRemaining) {
  BandwidthTimeline tl(4.0);
  const RateProfile p = tl.transfer_from(0.0, 8.0);  // [0, 2] at rate 4
  tl.consume(p);
  tl.check_invariants();
  EXPECT_DOUBLE_EQ(tl.remaining_at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.remaining_at(3.0), 4.0);
}

TEST(BandwidthTimeline, SecondTransferSharesLeftovers) {
  BandwidthTimeline tl(4.0);
  RateProfile half;
  half.append(0.0, 2.0, 2.0);  // uses half the link
  tl.consume(half);
  const RateProfile p = tl.transfer_from(0.0, 8.0);
  // 2 units/s available until t=2 (4 volume), then 4 units/s: finishes at 3.
  EXPECT_DOUBLE_EQ(p.finish_time(), 3.0);
  EXPECT_NEAR(p.volume(), 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.rate_at(1.0), 2.0);
  EXPECT_DOUBLE_EQ(p.rate_at(2.5), 4.0);
}

TEST(BandwidthTimeline, TransferWaitsForFreeBandwidth) {
  BandwidthTimeline tl(4.0);
  RateProfile blocker;
  blocker.append(0.0, 5.0, 4.0);  // saturates the link until t=5
  tl.consume(blocker);
  const RateProfile p = tl.transfer_from(1.0, 4.0);
  EXPECT_DOUBLE_EQ(p.start_time(), 5.0);
  EXPECT_DOUBLE_EQ(p.finish_time(), 6.0);
}

TEST(BandwidthTimeline, FirstAvailableSkipsSaturation) {
  BandwidthTimeline tl(2.0);
  RateProfile blocker;
  blocker.append(1.0, 3.0, 2.0);
  tl.consume(blocker);
  EXPECT_DOUBLE_EQ(tl.first_available(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tl.first_available(1.5), 3.0);
  EXPECT_DOUBLE_EQ(tl.first_available(4.0), 4.0);
}

TEST(BandwidthTimeline, EarliestFinishIntegratesRemaining) {
  BandwidthTimeline tl(2.0);
  RateProfile half;
  half.append(0.0, 4.0, 1.0);
  tl.consume(half);
  // 1 unit/s until t=4, then 2: volume 6 needs 4 + (6-4)/2 = 5.
  EXPECT_DOUBLE_EQ(tl.earliest_finish(0.0, 6.0), 5.0);
  // Probing never mutates:
  EXPECT_DOUBLE_EQ(tl.remaining_at(1.0), 1.0);
}

TEST(BandwidthTimeline, ForwardLimitedByInflowRate) {
  BandwidthTimeline tl(4.0);
  RateProfile inflow;
  inflow.append(0.0, 4.0, 1.0);  // slow upstream: 4 volume at rate 1
  const RateProfile out = tl.forward(inflow);
  // No backlog ever builds: outflow mirrors inflow.
  EXPECT_NEAR(out.volume(), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.finish_time(), 4.0);
  EXPECT_DOUBLE_EQ(out.rate_at(2.0), 1.0);
}

TEST(BandwidthTimeline, ForwardLimitedByCapacity) {
  BandwidthTimeline tl(1.0);
  RateProfile inflow;
  inflow.append(0.0, 1.0, 4.0);  // fast upstream: 4 volume in 1s
  const RateProfile out = tl.forward(inflow);
  // Capacity 1: backlog builds, drains until t=4.
  EXPECT_NEAR(out.volume(), 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(out.finish_time(), 4.0);
  EXPECT_DOUBLE_EQ(out.rate_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(3.5), 1.0);
}

TEST(BandwidthTimeline, ForwardNeverSendsBeforeData) {
  BandwidthTimeline tl(10.0);
  RateProfile inflow;
  inflow.append(2.0, 4.0, 1.0);
  const RateProfile out = tl.forward(inflow);
  EXPECT_GE(out.start_time(), 2.0);
  // Causality at every breakpoint.
  for (double t : out.breakpoints()) {
    EXPECT_LE(out.cumulative(t), inflow.cumulative(t) + 1e-9);
  }
}

TEST(BandwidthTimeline, ForwardAroundBusyWindow) {
  BandwidthTimeline tl(2.0);
  RateProfile blocker;
  blocker.append(1.0, 2.0, 2.0);  // link saturated during [1, 2)
  tl.consume(blocker);
  RateProfile inflow;
  inflow.append(0.0, 3.0, 1.0);  // 3 volume trickling in
  const RateProfile out = tl.forward(inflow);
  EXPECT_NEAR(out.volume(), 3.0, 1e-9);
  // [0,1): sends 1 at rate 1 (no backlog). [1,2): blocked, backlog grows
  // to 1. [2,...): drains at rate 2 while inflow adds rate 1: backlog
  // empties at t=3; 2 volume moved in [2,3]. Done at t=3.
  EXPECT_DOUBLE_EQ(out.finish_time(), 3.0);
  EXPECT_DOUBLE_EQ(out.rate_at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(out.rate_at(1.5), 0.0);
  EXPECT_DOUBLE_EQ(out.rate_at(2.5), 2.0);
}

TEST(BandwidthTimeline, ForwardChainConservesVolume) {
  BandwidthTimeline a(3.0);
  BandwidthTimeline b(2.0);
  BandwidthTimeline c(5.0);
  const RateProfile p1 = a.transfer_from(0.0, 12.0);
  a.consume(p1);
  const RateProfile p2 = b.forward(p1);
  b.consume(p2);
  const RateProfile p3 = c.forward(p2);
  c.consume(p3);
  EXPECT_NEAR(p2.volume(), 12.0, 1e-6);
  EXPECT_NEAR(p3.volume(), 12.0, 1e-6);
  // Slowest link in the chain dominates: 12 volume at capacity 2 from t=0
  // cannot beat t=6.
  EXPECT_GE(p3.finish_time(), 6.0 - 1e-9);
  // And the chain is work-conserving: it achieves exactly t=6.
  EXPECT_NEAR(p3.finish_time(), 6.0, 1e-6);
}

TEST(BandwidthTimeline, LargeTimeMagnitudesConverge) {
  // Regression: at schedule times around 1e6+, one-ulp rounding leaves
  // sub-representable residual backlogs; the sweep must treat them as
  // noise instead of spinning (fig4 paper-scale failure).
  Rng rng(20060815);
  for (int round = 0; round < 40; ++round) {
    const double base = 2.0e6 + rng.uniform_real(0.0, 1.0e6);
    std::vector<timeline::BandwidthTimeline> chain;
    for (int hop = 0; hop < 3; ++hop) {
      chain.emplace_back(
          static_cast<double>(rng.uniform_int(1, 10)));
      // Pre-existing traffic near the transfer window; fractions are
      // capped so overlapping blockers never oversubscribe the link.
      for (int k = 0; k < 3; ++k) {
        const double start = base + rng.uniform_real(-100.0, 900.0);
        const double len = rng.uniform_real(0.1, 200.0);
        const double rate =
            chain.back().capacity() * rng.uniform_real(0.05, 0.25);
        RateProfile blocker;
        blocker.append(start, start + len, rate);
        chain.back().consume(blocker);
      }
    }
    const double volume = rng.uniform_real(0.5, 9000.0);
    RateProfile profile = chain[0].transfer_from(base, volume);
    chain[0].consume(profile);
    EXPECT_NEAR(profile.volume(), volume,
                1e-5 * std::max(1.0, volume));
    for (std::size_t hop = 1; hop < chain.size(); ++hop) {
      profile = chain[hop].forward(profile);
      chain[hop].consume(profile);
      EXPECT_NEAR(profile.volume(), volume,
                  1e-5 * std::max(1.0, volume));
    }
  }
}

TEST(BandwidthTimeline, ConsumeRejectsOverbooking) {
  BandwidthTimeline tl(1.0);
  RateProfile p;
  p.append(0.0, 1.0, 2.0);  // twice the capacity
  EXPECT_THROW(tl.consume(p), InternalError);
}

TEST(BandwidthTimeline, SplitPointsAccumulate) {
  BandwidthTimeline tl(4.0);
  for (int i = 0; i < 10; ++i) {
    RateProfile p;
    p.append(i, i + 2.0, 0.25);
    tl.consume(p);
    tl.check_invariants();
  }
  EXPECT_DOUBLE_EQ(tl.remaining_at(0.5), 3.75);
  EXPECT_DOUBLE_EQ(tl.remaining_at(5.5), 3.5);  // two overlapping consumers
}

}  // namespace
}  // namespace edgesched::timeline
