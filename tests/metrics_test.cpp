#include "sched/metrics.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/lower_bounds.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

TEST(LowerBounds, HandComputed) {
  // Chain of 3 tasks, weight 4 each, on 2 processors of speeds 1 and 2.
  const dag::TaskGraph graph = dag::chain(3, 4.0, 1.0);
  net::Topology topo;
  const net::NodeId slow = topo.add_processor(1.0);
  const net::NodeId fast = topo.add_processor(2.0);
  topo.add_duplex_link(slow, fast, 1.0);

  EXPECT_DOUBLE_EQ(critical_path_bound(graph, topo), 12.0 / 2.0);
  EXPECT_DOUBLE_EQ(work_bound(graph, topo), 12.0 / 3.0);
  EXPECT_DOUBLE_EQ(max_task_bound(graph, topo), 4.0 / 2.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(graph, topo), 6.0);
}

TEST(LowerBounds, WorkBoundDominatesForWideGraphs) {
  dag::TaskGraph graph;
  for (int i = 0; i < 16; ++i) {
    (void)graph.add_task(1.0);
  }
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(2, net::SpeedConfig{}, rng);
  EXPECT_DOUBLE_EQ(critical_path_bound(graph, topo), 1.0);
  EXPECT_DOUBLE_EQ(work_bound(graph, topo), 8.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(graph, topo), 8.0);
}

TEST(LowerBounds, EmptyGraph) {
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(2, net::SpeedConfig{}, rng);
  EXPECT_DOUBLE_EQ(critical_path_bound(dag::TaskGraph{}, topo), 0.0);
}

TEST(LowerBounds, EverySchedulerRespectsThem) {
  for (std::uint64_t seed : {2u, 3u}) {
    Rng rng(seed);
    dag::LayeredDagParams params;
    params.num_tasks = 30;
    dag::TaskGraph graph = dag::random_layered(params, rng);
    dag::rescale_to_ccr(graph, 2.0);
    net::RandomWanParams wan;
    wan.num_processors = 6;
    wan.speeds.heterogeneous = true;
    const net::Topology topo = net::random_wan(wan, rng);
    const double bound = makespan_lower_bound(graph, topo);
    for (const auto& scheduler : all_schedulers()) {
      EXPECT_GE(scheduler->schedule(graph, topo).makespan(),
                bound - 1e-6)
          << scheduler->name();
    }
  }
}

TEST(Metrics, HandComputedTwoTaskSchedule) {
  // a -> b, both on one processor of a 2-proc star: no communication.
  const dag::TaskGraph graph = dag::chain(2, 3.0, 10.0);
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(2, net::SpeedConfig{}, rng);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  const ScheduleMetrics m = compute_metrics(graph, topo, s);
  EXPECT_DOUBLE_EQ(m.makespan, 6.0);
  EXPECT_DOUBLE_EQ(m.slr, 1.0);           // equals the chain bound
  EXPECT_DOUBLE_EQ(m.speedup, 1.0);       // serial work = 6
  EXPECT_DOUBLE_EQ(m.efficiency, 0.5);    // 2 processors
  EXPECT_DOUBLE_EQ(m.processor_utilisation, 0.5);
  EXPECT_EQ(m.local_edges, 1u);
  EXPECT_EQ(m.remote_edges, 0u);
  EXPECT_DOUBLE_EQ(m.network_busy_time, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_route_length, 0.0);
}

TEST(Metrics, CountsRemoteEdgesAndDelay) {
  const dag::TaskGraph graph = dag::fork(2, 20.0, 6.0);
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  const ScheduleMetrics m = compute_metrics(graph, topo, s);
  EXPECT_EQ(m.local_edges + m.remote_edges, graph.num_edges());
  if (m.remote_edges > 0) {
    EXPECT_DOUBLE_EQ(m.mean_route_length, 2.0);  // proc-switch-proc
    EXPECT_GT(m.mean_communication_delay, 0.0);
    EXPECT_GT(m.network_busy_time, 0.0);
    EXPECT_GT(m.link_utilisation, 0.0);
  }
}

TEST(Metrics, DomainBusyMatchesOccupations) {
  const dag::TaskGraph graph = dag::fork(2, 20.0, 6.0);
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  const std::vector<double> busy = domain_busy_times(graph, topo, s);
  ASSERT_EQ(busy.size(), topo.num_domains());
  double total = 0.0;
  for (double b : busy) {
    total += b;
  }
  const ScheduleMetrics m = compute_metrics(graph, topo, s);
  EXPECT_DOUBLE_EQ(total, m.network_busy_time);
}

TEST(Metrics, BandwidthSchedulesWeightBusyByRate) {
  Rng rng(9);
  dag::LayeredDagParams params;
  params.num_tasks = 20;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 3.0);
  net::RandomWanParams wan;
  wan.num_processors = 4;
  const net::Topology topo = net::random_wan(wan, rng);
  const Schedule s = Bbsa{}.schedule(graph, topo);
  const ScheduleMetrics m = compute_metrics(graph, topo, s);
  // Busy time must equal sum of volume/capacity over all hops.
  double expected = 0.0;
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = s.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kBandwidth) {
      for (std::size_t i = 0; i < comm.profiles.size(); ++i) {
        expected += comm.profiles[i].volume() /
                    topo.link_speed(comm.route[i]);
      }
    }
  }
  EXPECT_NEAR(m.network_busy_time, expected, 1e-6);
}

TEST(Metrics, ToStringMentionsEveryField) {
  const dag::TaskGraph graph = dag::chain(2, 3.0, 1.0);
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(2, net::SpeedConfig{}, rng);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  const std::string text =
      to_string(compute_metrics(graph, topo, s));
  for (const char* field :
       {"makespan", "SLR", "speedup", "efficiency", "utilisation",
        "route length"}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
}

}  // namespace
}  // namespace edgesched::sched
