#include "sched/assignment.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

TEST(Assignment, AllOnOneProcessorSerialises) {
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::fork_join(3, 2.0, 5.0);
  const Assignment all_first(graph.num_tasks(), topo.processors()[0]);
  const Schedule s = schedule_assignment(graph, topo, all_first);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  EXPECT_EQ(s.algorithm(), "ASSIGNMENT");
}

TEST(Assignment, CrossAssignmentsBookLinks) {
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(2, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::chain(2, 2.0, 4.0);
  Assignment split{topo.processors()[0], topo.processors()[1]};
  const Schedule s = schedule_assignment(graph, topo, split);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.communication(dag::EdgeId(0u)).kind,
            EdgeCommunication::Kind::kExclusive);
  // Ship at ready (2), two cut-through hops of 4: arrival 6, finish 8.
  EXPECT_DOUBLE_EQ(s.makespan(), 8.0);
}

TEST(Assignment, RoundTripsListSchedulerAssignments) {
  Rng rng(5);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 2.0);
  net::RandomWanParams wan;
  wan.num_processors = 5;
  const net::Topology topo = net::random_wan(wan, rng);

  for (const Schedule& original :
       {BasicAlgorithm{}.schedule(graph, topo),
        Oihsa{}.schedule(graph, topo)}) {
    const Assignment extracted = assignment_of(graph, original);
    const Schedule rebuilt =
        schedule_assignment(graph, topo, extracted);
    validate_or_throw(graph, topo, rebuilt);
    for (dag::TaskId t : graph.all_tasks()) {
      EXPECT_EQ(rebuilt.task(t).processor, original.task(t).processor);
    }
  }
}

TEST(Assignment, MakespanHelperMatchesSchedule) {
  Rng rng(3);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::fork_join(4, 2.0, 3.0);
  Assignment assignment(graph.num_tasks());
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    assignment[i] = topo.processors()[i % topo.num_processors()];
  }
  EXPECT_DOUBLE_EQ(assignment_makespan(graph, topo, assignment),
                   schedule_assignment(graph, topo, assignment)
                       .makespan());
}

TEST(Assignment, RejectsBadInput) {
  Rng rng(1);
  const net::Topology topo =
      net::switched_star(2, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::chain(2);
  EXPECT_THROW((void)schedule_assignment(graph, topo, Assignment{}),
               std::invalid_argument);
  Assignment bad(graph.num_tasks(), net::NodeId(0u));  // the switch
  EXPECT_THROW((void)schedule_assignment(graph, topo, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::sched
