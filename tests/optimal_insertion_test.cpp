#include "timeline/optimal_insertion.hpp"

#include <gtest/gtest.h>

#include <map>

namespace edgesched::timeline {
namespace {

dag::EdgeId edge(std::size_t i) { return dag::EdgeId(i); }

/// Deferral callback backed by a per-edge slack table.
class SlackTable {
 public:
  void set(dag::EdgeId e, double dt) { table_[e] = dt; }
  DeferralFn fn() const {
    return [this](const TimeSlot& slot) {
      const auto it = table_.find(slot.edge);
      return it == table_.end() ? 0.0 : it->second;
    };
  }

 private:
  std::map<dag::EdgeId, double> table_;
};

TEST(OptimalInsertion, EmptyTimelineMatchesBasic) {
  LinkTimeline tl;
  SlackTable slack;
  const OptimalPlacement opt =
      probe_optimal(tl, 3.0, 0.0, 2.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 3.0);
  EXPECT_DOUBLE_EQ(opt.placement.finish, 5.0);
  EXPECT_TRUE(opt.shifts.empty());
}

TEST(OptimalInsertion, UsesExistingGapWithoutShifting) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));    // [0, 2]
  tl.commit(tl.probe_basic(10.0, 0.0, 2.0), edge(1));   // [10, 12]
  SlackTable slack;  // no slack anywhere
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 5.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 2.0);
  EXPECT_DOUBLE_EQ(opt.placement.finish, 7.0);
  EXPECT_EQ(opt.placement.position, 1u);
  EXPECT_TRUE(opt.shifts.empty());
}

TEST(OptimalInsertion, DefersBlockingSlot) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2]
  SlackTable slack;
  slack.set(edge(0), 5.0);
  // Basic insertion would append at [2, 5]; optimal inserts at [0, 3] and
  // defers the occupant to [3, 5].
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 3.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 0.0);
  EXPECT_DOUBLE_EQ(opt.placement.finish, 3.0);
  EXPECT_EQ(opt.placement.position, 0u);
  ASSERT_EQ(opt.shifts.size(), 1u);
  EXPECT_EQ(opt.shifts[0].edge, edge(0));
  EXPECT_DOUBLE_EQ(opt.shifts[0].new_start, 3.0);
  EXPECT_DOUBLE_EQ(opt.shifts[0].new_finish, 5.0);
}

TEST(OptimalInsertion, RespectsZeroSlack) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2], dt = 0
  SlackTable slack;
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 3.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 2.0);  // appended, no deferral
  EXPECT_TRUE(opt.shifts.empty());
}

TEST(OptimalInsertion, PartialSlackIsNotEnough) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2]
  SlackTable slack;
  slack.set(edge(0), 0.5);  // can defer to [0.5, 2.5] only
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 3.0, slack.fn());
  // A 3-unit job cannot fit before the slot even after deferral.
  EXPECT_DOUBLE_EQ(opt.placement.start, 2.0);
  EXPECT_TRUE(opt.shifts.empty());
}

TEST(OptimalInsertion, CascadeAcrossTwoSlots) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2]
  tl.commit(tl.probe_basic(2.0, 0.0, 2.0), edge(1));  // [2, 4]
  SlackTable slack;
  slack.set(edge(0), 3.0);
  slack.set(edge(1), 3.0);
  // Insert 3 units at the head: [0, 3]; edge0 -> [3, 5], edge1 -> [5, 7].
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 3.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 0.0);
  EXPECT_EQ(opt.placement.position, 0u);
  ASSERT_EQ(opt.shifts.size(), 2u);
  EXPECT_DOUBLE_EQ(opt.shifts[0].new_start, 3.0);
  EXPECT_DOUBLE_EQ(opt.shifts[0].new_finish, 5.0);
  EXPECT_DOUBLE_EQ(opt.shifts[1].new_start, 5.0);
  EXPECT_DOUBLE_EQ(opt.shifts[1].new_finish, 7.0);
}

TEST(OptimalInsertion, CascadeLimitedByDownstreamSlack) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2]
  tl.commit(tl.probe_basic(2.0, 0.0, 2.0), edge(1));  // [2, 4]
  SlackTable slack;
  slack.set(edge(0), 10.0);
  slack.set(edge(1), 0.0);  // immovable
  // accum(edge0) = min(10, 0 + gap(0)) = 0: cannot insert at the head.
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 1.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 4.0);  // appended after everything
  EXPECT_TRUE(opt.shifts.empty());
}

TEST(OptimalInsertion, GapAbsorbsPartOfTheCascade) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2]
  tl.commit(tl.probe_basic(5.0, 0.0, 2.0), edge(1));  // [5, 7]
  SlackTable slack;
  slack.set(edge(0), 2.0);
  slack.set(edge(1), 0.0);
  // accum(edge0) = min(2, 0 + (5-2)) = 2; insert 2 units at the head:
  // [0, 2], edge0 defers to [2, 4], and the old [2, 5] gap absorbs the
  // cascade before it reaches the immovable edge1.
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 2.0, slack.fn());
  EXPECT_DOUBLE_EQ(opt.placement.start, 0.0);
  EXPECT_EQ(opt.placement.position, 0u);
  ASSERT_EQ(opt.shifts.size(), 1u);
  EXPECT_EQ(opt.shifts[0].edge, edge(0));
  EXPECT_DOUBLE_EQ(opt.shifts[0].new_start, 2.0);
  EXPECT_DOUBLE_EQ(opt.shifts[0].new_finish, 4.0);
}

TEST(OptimalInsertion, PicksHeadmostFeasiblePosition) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 1.0), edge(0));   // [0, 1]
  tl.commit(tl.probe_basic(4.0, 0.0, 1.0), edge(1));   // [4, 5]
  tl.commit(tl.probe_basic(9.0, 0.0, 1.0), edge(2));   // [9, 10]
  SlackTable slack;  // generous gaps, no slack needed
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 2.0, slack.fn());
  // Both [1, 4] and [5, 9] fit; the earlier one must win.
  EXPECT_DOUBLE_EQ(opt.placement.start, 1.0);
  EXPECT_EQ(opt.placement.position, 1u);
}

TEST(OptimalInsertion, CommitAppliesShiftsAndKeepsInvariants) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));
  tl.commit(tl.probe_basic(2.0, 0.0, 2.0), edge(1));
  SlackTable slack;
  slack.set(edge(0), 3.0);
  slack.set(edge(1), 3.0);
  const OptimalPlacement opt =
      probe_optimal(tl, 0.0, 0.0, 3.0, slack.fn());
  commit_optimal(tl, opt, edge(2));
  ASSERT_EQ(tl.size(), 3u);
  tl.check_invariants();
  EXPECT_EQ(tl.slots()[0].edge, edge(2));
  EXPECT_DOUBLE_EQ(tl.slots()[0].finish, 3.0);
  EXPECT_EQ(tl.slots()[1].edge, edge(0));
  EXPECT_DOUBLE_EQ(tl.slots()[2].finish, 7.0);
}

TEST(OptimalInsertion, NeverWorseThanBasic) {
  // Property: for identical timeline states, the optimal start is <= the
  // basic start.
  LinkTimeline tl;
  tl.commit(tl.probe_basic(1.0, 0.0, 2.0), edge(0));
  tl.commit(tl.probe_basic(4.0, 0.0, 3.0), edge(1));
  tl.commit(tl.probe_basic(9.0, 0.0, 1.0), edge(2));
  SlackTable slack;
  slack.set(edge(0), 1.0);
  slack.set(edge(1), 2.0);
  slack.set(edge(2), 0.5);
  for (double t_es : {0.0, 2.0, 5.0, 8.0, 20.0}) {
    for (double dur : {0.5, 1.5, 3.0, 6.0}) {
      const Placement basic = tl.probe_basic(t_es, 0.0, dur);
      const OptimalPlacement opt =
          probe_optimal(tl, t_es, 0.0, dur, slack.fn());
      EXPECT_LE(opt.placement.start, basic.start + 1e-9)
          << "t_es=" << t_es << " dur=" << dur;
    }
  }
}

}  // namespace
}  // namespace edgesched::timeline
