#include "timeline/processor_timeline.hpp"

#include <gtest/gtest.h>

namespace edgesched::timeline {
namespace {

dag::TaskId task(std::size_t i) { return dag::TaskId(i); }

TEST(ProcessorTimeline, EmptyStartsAtReadyTime) {
  ProcessorTimeline tl;
  EXPECT_DOUBLE_EQ(tl.earliest_start(3.5, 2.0), 3.5);
  EXPECT_DOUBLE_EQ(tl.last_finish(), 0.0);
}

TEST(ProcessorTimeline, AppendsAfterBusyStretch) {
  ProcessorTimeline tl;
  tl.commit(task(0), 0.0, 4.0);
  EXPECT_DOUBLE_EQ(tl.earliest_start(0.0, 2.0), 4.0);
  EXPECT_DOUBLE_EQ(tl.last_finish(), 4.0);
}

TEST(ProcessorTimeline, InsertionFillsGap) {
  ProcessorTimeline tl;
  tl.commit(task(0), 0.0, 2.0);
  tl.commit(task(1), 10.0, 2.0);
  EXPECT_DOUBLE_EQ(tl.earliest_start(0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(tl.earliest_start(0.0, 9.0), 12.0);  // gap too small
  EXPECT_DOUBLE_EQ(tl.earliest_start(5.0, 3.0), 5.0);   // within the gap
  EXPECT_DOUBLE_EQ(tl.earliest_start(8.0, 3.0), 12.0);  // would overlap
}

TEST(ProcessorTimeline, ZeroDurationTask) {
  // Non-preemption applies to zero-length tasks too: they wait for the
  // processor to go idle rather than squeezing into a busy interval.
  ProcessorTimeline tl;
  tl.commit(task(0), 0.0, 2.0);
  EXPECT_DOUBLE_EQ(tl.earliest_start(1.0, 0.0), 2.0);
  tl.commit(task(1), 2.0, 0.0);
  EXPECT_EQ(tl.slots().size(), 2u);
}

TEST(ProcessorTimeline, CommitOutOfOrderStaysSorted) {
  ProcessorTimeline tl;
  tl.commit(task(0), 10.0, 2.0);
  tl.commit(task(1), 0.0, 2.0);
  tl.commit(task(2), 5.0, 2.0);
  ASSERT_EQ(tl.slots().size(), 3u);
  EXPECT_EQ(tl.slots()[0].task, task(1));
  EXPECT_EQ(tl.slots()[1].task, task(2));
  EXPECT_EQ(tl.slots()[2].task, task(0));
  EXPECT_DOUBLE_EQ(tl.busy_time(), 6.0);
}

TEST(ProcessorTimeline, OverlapIsRejected) {
  ProcessorTimeline tl;
  tl.commit(task(0), 0.0, 4.0);
  EXPECT_THROW(tl.commit(task(1), 2.0, 2.0), InternalError);
  EXPECT_THROW(tl.commit(task(1), 3.9, 1.0), InternalError);
}

TEST(ProcessorTimeline, ZeroLengthSlotDoesNotBlockItsStart) {
  // Regression: STG graphs carry zero-weight dummy entry tasks; a
  // committed [0, 0) slot must not prevent a real task from starting at
  // 0 (upper_bound insertion ordering).
  ProcessorTimeline tl;
  tl.commit(task(0), 0.0, 0.0);
  EXPECT_DOUBLE_EQ(tl.earliest_start(0.0, 10.0), 0.0);
  tl.commit(task(1), 0.0, 10.0);
  ASSERT_EQ(tl.slots().size(), 2u);
  EXPECT_EQ(tl.slots()[0].task, task(0));
  EXPECT_EQ(tl.slots()[1].task, task(1));
}

TEST(ProcessorTimeline, StackedZeroLengthSlots) {
  ProcessorTimeline tl;
  tl.commit(task(0), 5.0, 0.0);
  tl.commit(task(1), 5.0, 0.0);
  tl.commit(task(2), 5.0, 2.0);
  EXPECT_EQ(tl.slots().size(), 3u);
  EXPECT_DOUBLE_EQ(tl.last_finish(), 7.0);
}

TEST(ProcessorTimeline, AbuttingTasksAreFine) {
  ProcessorTimeline tl;
  tl.commit(task(0), 0.0, 4.0);
  tl.commit(task(1), 4.0, 2.0);
  EXPECT_DOUBLE_EQ(tl.last_finish(), 6.0);
}

}  // namespace
}  // namespace edgesched::timeline
