#include "sched/validator.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "net/routing.hpp"

namespace edgesched::sched {
namespace {

/// Two processors joined through one switch; chain graph a -> b, cost 4.
struct Fixture {
  dag::TaskGraph graph = dag::chain(2, 2.0, 4.0);
  net::Topology topo;
  net::NodeId p0, p1, sw;
  net::LinkId p0_sw, sw_p1;

  Fixture() {
    p0 = topo.add_processor(1.0, "p0");
    p1 = topo.add_processor(1.0, "p1");
    sw = topo.add_switch("sw");
    p0_sw = topo.add_duplex_link(p0, sw, 1.0).first;
    sw_p1 = topo.add_duplex_link(sw, p1, 1.0).first;
  }

  /// A correct exclusive-model schedule: task0 on p0 [0,2], transfer
  /// [2,6] on both hops (cut-through), task1 on p1 [6,8].
  Schedule good() const {
    Schedule s("hand", 2, 1);
    s.place_task(dag::TaskId(0u), TaskPlacement{p0, 0.0, 2.0});
    s.place_task(dag::TaskId(1u), TaskPlacement{p1, 6.0, 8.0});
    EdgeCommunication comm;
    comm.kind = EdgeCommunication::Kind::kExclusive;
    comm.route = {p0_sw, sw_p1};
    comm.occupations = {LinkOccupation{p0_sw, 2.0, 2.0, 6.0},
                        LinkOccupation{sw_p1, 2.0, 2.0, 6.0}};
    comm.arrival = 6.0;
    s.set_communication(dag::EdgeId(0u), comm);
    return s;
  }
};

TEST(Validator, AcceptsCorrectSchedule) {
  const Fixture f;
  const auto violations = validate(f.graph, f.topo, f.good());
  EXPECT_TRUE(violations.empty())
      << (violations.empty() ? "" : violations.front());
  EXPECT_TRUE(is_valid(f.graph, f.topo, f.good()));
  EXPECT_NO_THROW(validate_or_throw(f.graph, f.topo, f.good()));
}

TEST(Validator, CatchesUnplacedTask) {
  const Fixture f;
  Schedule s("bad", 2, 1);
  s.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  EXPECT_FALSE(is_valid(f.graph, f.topo, s));
}

TEST(Validator, CatchesWrongDuration) {
  const Fixture f;
  Schedule s = f.good();
  // Rebuild with a too-short task 1.
  Schedule bad("bad", 2, 1);
  bad.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  bad.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 6.0, 7.0});
  bad.set_communication(dag::EdgeId(0u),
                        s.communication(dag::EdgeId(0u)));
  const auto violations = validate(f.graph, f.topo, bad);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("duration"), std::string::npos);
}

TEST(Validator, CatchesNegativeStart) {
  const Fixture f;
  Schedule bad("bad", 2, 1);
  bad.place_task(dag::TaskId(0u), TaskPlacement{f.p0, -1.0, 1.0});
  bad.place_task(dag::TaskId(1u), TaskPlacement{f.p0, 1.0, 3.0});
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kLocal;
  comm.arrival = 1.0;
  bad.set_communication(dag::EdgeId(0u), comm);
  EXPECT_FALSE(is_valid(f.graph, f.topo, bad));
}

TEST(Validator, CatchesProcessorOverlap) {
  const Fixture f;
  Schedule bad("bad", 2, 1);
  bad.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  bad.place_task(dag::TaskId(1u), TaskPlacement{f.p0, 1.0, 3.0});
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kLocal;
  comm.arrival = 2.0;
  bad.set_communication(dag::EdgeId(0u), comm);
  const auto violations = validate(f.graph, f.topo, bad);
  EXPECT_FALSE(violations.empty());
}

TEST(Validator, CatchesPrecedenceViolation) {
  const Fixture f;
  Schedule bad("bad", 2, 1);
  bad.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 4.0, 6.0});
  bad.place_task(dag::TaskId(1u), TaskPlacement{f.p0, 0.0, 2.0});
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kLocal;
  comm.arrival = 6.0;
  bad.set_communication(dag::EdgeId(0u), comm);
  EXPECT_FALSE(is_valid(f.graph, f.topo, bad));
}

TEST(Validator, CatchesMissingRoute) {
  const Fixture f;
  Schedule bad = f.good();
  Schedule rebuilt("bad", 2, 1);
  rebuilt.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  rebuilt.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 6.0, 8.0});
  EdgeCommunication comm = bad.communication(dag::EdgeId(0u));
  comm.route = {f.p0_sw};  // truncated route
  comm.occupations.pop_back();
  rebuilt.set_communication(dag::EdgeId(0u), comm);
  const auto violations = validate(f.graph, f.topo, rebuilt);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("route"), std::string::npos);
}

TEST(Validator, CatchesWrongSlotLength) {
  const Fixture f;
  Schedule rebuilt("bad", 2, 1);
  rebuilt.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  rebuilt.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 6.0, 8.0});
  EdgeCommunication comm = f.good().communication(dag::EdgeId(0u));
  comm.occupations[0].start = 3.0;  // slot now 3 units, c/s = 4
  rebuilt.set_communication(dag::EdgeId(0u), comm);
  EXPECT_FALSE(is_valid(f.graph, f.topo, rebuilt));
}

TEST(Validator, CatchesCausalityViolation) {
  const Fixture f;
  Schedule rebuilt("bad", 2, 1);
  rebuilt.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  rebuilt.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 6.0, 8.0});
  EdgeCommunication comm = f.good().communication(dag::EdgeId(0u));
  // Second hop finishes before the first: impossible.
  comm.occupations[1] = LinkOccupation{f.sw_p1, 1.0, 1.0, 5.0};
  comm.arrival = 5.0;
  rebuilt.set_communication(dag::EdgeId(0u), comm);
  EXPECT_FALSE(is_valid(f.graph, f.topo, rebuilt));
}

TEST(Validator, CatchesStartBeforeArrival) {
  const Fixture f;
  Schedule rebuilt("bad", 2, 1);
  rebuilt.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  rebuilt.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 5.0, 7.0});
  rebuilt.set_communication(dag::EdgeId(0u),
                            f.good().communication(dag::EdgeId(0u)));
  const auto violations = validate(f.graph, f.topo, rebuilt);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("arrival"), std::string::npos);
}

TEST(Validator, CatchesDomainOverlapAcrossEdges) {
  // Two edges booked on the same link at overlapping times.
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(1.0);
  const dag::TaskId b = graph.add_task(1.0);
  const dag::TaskId c = graph.add_task(1.0);
  const dag::TaskId d = graph.add_task(1.0);
  const dag::EdgeId e0 = graph.add_edge(a, c, 2.0);
  const dag::EdgeId e1 = graph.add_edge(b, d, 2.0);

  net::Topology topo;
  const net::NodeId p0 = topo.add_processor();
  const net::NodeId p1 = topo.add_processor();
  const net::LinkId link = topo.add_link(p0, p1, 1.0);
  (void)topo.add_link(p1, p0, 1.0);

  Schedule s("bad", 4, 2);
  s.place_task(a, TaskPlacement{p0, 0.0, 1.0});
  s.place_task(b, TaskPlacement{p0, 1.0, 2.0});
  s.place_task(c, TaskPlacement{p1, 4.0, 5.0});
  s.place_task(d, TaskPlacement{p1, 5.0, 6.0});
  EdgeCommunication comm0;
  comm0.kind = EdgeCommunication::Kind::kExclusive;
  comm0.route = {link};
  comm0.occupations = {LinkOccupation{link, 1.0, 1.0, 3.0}};
  comm0.arrival = 3.0;
  EdgeCommunication comm1 = comm0;
  comm1.occupations = {LinkOccupation{link, 2.0, 2.0, 4.0}};  // overlaps!
  comm1.arrival = 4.0;
  s.set_communication(e0, comm0);
  s.set_communication(e1, comm1);
  const auto violations = validate(graph, topo, s);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) {
    found = found || v.find("overlapping") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validator, BandwidthOverbookingIsCaught) {
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(1.0);
  const dag::TaskId b = graph.add_task(1.0);
  const dag::TaskId c = graph.add_task(1.0);
  const dag::TaskId d = graph.add_task(1.0);
  const dag::EdgeId e0 = graph.add_edge(a, c, 2.0);
  const dag::EdgeId e1 = graph.add_edge(b, d, 2.0);

  net::Topology topo;
  const net::NodeId p0 = topo.add_processor();
  const net::NodeId p1 = topo.add_processor();
  const net::LinkId link = topo.add_link(p0, p1, 1.0);
  (void)topo.add_link(p1, p0, 1.0);

  Schedule s("bad", 4, 2);
  s.place_task(a, TaskPlacement{p0, 0.0, 1.0});
  s.place_task(b, TaskPlacement{p0, 1.0, 2.0});
  s.place_task(c, TaskPlacement{p1, 4.0, 5.0});
  s.place_task(d, TaskPlacement{p1, 5.0, 6.0});
  const auto bandwidth_comm = [&](double start) {
    EdgeCommunication comm;
    comm.kind = EdgeCommunication::Kind::kBandwidth;
    comm.route = {link};
    timeline::RateProfile p;
    p.append(start, start + 2.0, 1.0);  // full capacity each
    comm.profiles = {p};
    comm.arrival = start + 2.0;
    return comm;
  };
  s.set_communication(e0, bandwidth_comm(1.0));
  s.set_communication(e1, bandwidth_comm(2.0));  // overlaps in [2, 3]
  const auto violations = validate(graph, topo, s);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) {
    found = found || v.find("capacity") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validator, PacketizedGoodAndBadSchedules) {
  const Fixture f;
  // cost 4 in 2 packets of volume 2 over 2 hops, store-and-forward:
  // packet 0: [2,4] then [4,6]; packet 1: [4,6] then [6,8]. Arrival 8.
  const auto packet_comm = [&](bool break_ordering) {
    EdgeCommunication comm;
    comm.kind = EdgeCommunication::Kind::kPacketized;
    comm.route = {f.p0_sw, f.sw_p1};
    comm.packet_count = 2;
    comm.occupations = {
        LinkOccupation{f.p0_sw, 2.0, 2.0, 4.0},
        LinkOccupation{f.sw_p1, 4.0, 4.0, 6.0},
        LinkOccupation{f.p0_sw, 4.0, 4.0, 6.0},
        LinkOccupation{f.sw_p1, 6.0, 6.0, 8.0},
    };
    if (break_ordering) {
      // Packet 0's second hop starts before its first hop finished.
      comm.occupations[1] = LinkOccupation{f.sw_p1, 2.0, 2.0, 4.0};
    }
    comm.arrival = 8.0;
    return comm;
  };

  Schedule good("packets", 2, 1);
  good.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  good.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 8.0, 10.0});
  good.set_communication(dag::EdgeId(0u), packet_comm(false));
  const auto ok = validate(f.graph, f.topo, good);
  EXPECT_TRUE(ok.empty()) << (ok.empty() ? "" : ok.front());

  Schedule bad("packets", 2, 1);
  bad.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  bad.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 8.0, 10.0});
  bad.set_communication(dag::EdgeId(0u), packet_comm(true));
  const auto violations = validate(f.graph, f.topo, bad);
  ASSERT_FALSE(violations.empty());
  bool found = false;
  for (const auto& v : violations) {
    found = found || v.find("previous hop") != std::string::npos ||
            v.find("overlapping") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validator, PacketizedCountMismatchCaught) {
  const Fixture f;
  Schedule bad("packets", 2, 1);
  bad.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  bad.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 8.0, 10.0});
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kPacketized;
  comm.route = {f.p0_sw, f.sw_p1};
  comm.packet_count = 2;
  comm.occupations = {LinkOccupation{f.p0_sw, 2.0, 2.0, 4.0}};  // short
  comm.arrival = 4.0;
  bad.set_communication(dag::EdgeId(0u), comm);
  const auto violations = validate(f.graph, f.topo, bad);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations.front().find("packet"), std::string::npos);
}

TEST(Validator, ContentionFreeCanBeDisallowed) {
  const Fixture f;
  Schedule s("classic", 2, 1);
  s.place_task(dag::TaskId(0u), TaskPlacement{f.p0, 0.0, 2.0});
  s.place_task(dag::TaskId(1u), TaskPlacement{f.p1, 6.0, 8.0});
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kContentionFree;
  comm.arrival = 6.0;
  s.set_communication(dag::EdgeId(0u), comm);
  EXPECT_TRUE(is_valid(f.graph, f.topo, s));
  ValidationOptions strict;
  strict.allow_contention_free = false;
  EXPECT_FALSE(is_valid(f.graph, f.topo, s, strict));
}

TEST(Validator, DimensionMismatchIsCaught) {
  const Fixture f;
  const Schedule s("bad", 1, 0);
  const auto violations = validate(f.graph, f.topo, s);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations.front().find("dimensions"), std::string::npos);
}

}  // namespace
}  // namespace edgesched::sched
