#include "sched/bbsa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

net::Topology star(std::size_t procs) {
  Rng rng(1);
  return net::switched_star(procs, net::SpeedConfig{}, rng);
}

TEST(Bbsa, SingleProcessorSerialises) {
  const net::Topology topo = star(1);
  const dag::TaskGraph graph = dag::fork_join(3, 2.0, 5.0);
  const Schedule s = Bbsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(Bbsa, KeepsChainLocalWhenCommIsExpensive) {
  const dag::TaskGraph graph = dag::chain(2, 2.0, 4.0);
  const net::Topology topo = star(2);
  const Schedule s = Bbsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.task(dag::TaskId(0u)).processor,
            s.task(dag::TaskId(1u)).processor);
}

TEST(Bbsa, CrossTransferUsesFluidProfiles) {
  // Two heavy independent producers spread over both processors; the join
  // task then receives one edge remotely. Hand-traced: b (higher bl) goes
  // to p0, a to p1, c joins on p0, so edge a->c crosses p1 -> sw -> p0.
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(10.0, "a");
  const dag::TaskId b = graph.add_task(10.0, "b");
  const dag::TaskId c = graph.add_task(1.0, "c");
  const dag::EdgeId a_c = graph.add_edge(a, c, 2.0);
  (void)graph.add_edge(b, c, 4.0);

  net::Topology topo;
  const net::NodeId p0 = topo.add_processor(1.0, "p0");
  const net::NodeId p1 = topo.add_processor(1.0, "p1");
  const net::NodeId sw = topo.add_switch();
  topo.add_duplex_link(p0, sw, 2.0);
  topo.add_duplex_link(sw, p1, 1.0);

  const Schedule s = Bbsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.task(b).processor, p0);
  EXPECT_EQ(s.task(a).processor, p1);
  EXPECT_EQ(s.task(c).processor, p0);
  const EdgeCommunication& comm = s.communication(a_c);
  ASSERT_EQ(comm.kind, EdgeCommunication::Kind::kBandwidth);
  ASSERT_EQ(comm.profiles.size(), 2u);
  // First hop p1->sw (speed 1): volume 2 in [10, 12]; second hop sw->p0
  // (speed 2) is inflow-limited and mirrors it: arrival 12.
  EXPECT_NEAR(comm.profiles[0].finish_time(), 12.0, 1e-9);
  EXPECT_NEAR(comm.arrival, 12.0, 1e-9);
  EXPECT_NEAR(s.task(c).start, 12.0, 1e-9);
}

TEST(Bbsa, SharesLinkBetweenConcurrentTransfers) {
  // Two producers on separate processors both feed consumers across the
  // same switch; with bandwidth sharing both transfers can overlap.
  const dag::TaskGraph graph = dag::join(6, 1.0, 5.0);
  const net::Topology topo = star(4);
  const Schedule ours = Bbsa{}.schedule(graph, topo);
  const Schedule base = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, ours);
  EXPECT_LE(ours.makespan(), base.makespan() * 1.25);
}

TEST(Bbsa, ProfilesConserveVolumePerHop) {
  Rng rng(31);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 3.0);
  net::RandomWanParams wan;
  wan.num_processors = 6;
  const net::Topology topo = net::random_wan(wan, rng);
  const Schedule s = Bbsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = s.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kBandwidth) {
      for (const auto& profile : comm.profiles) {
        EXPECT_NEAR(profile.volume(), graph.cost(e),
                    1e-6 * std::max(1.0, graph.cost(e)));
      }
    }
  }
}

TEST(Bbsa, AllOptionCombinationsProduceValidSchedules) {
  Rng rng(33);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 6;
  const net::Topology topo = net::random_wan(wan, rng);
  for (bool edge_priority : {false, true}) {
    for (bool routing : {false, true}) {
      Bbsa::Options options;
      options.edge_priority_by_cost = edge_priority;
      options.modified_routing = routing;
      const Schedule s = Bbsa(options).schedule(graph, topo);
      validate_or_throw(graph, topo, s);
    }
  }
}

TEST(Bbsa, DeterministicAcrossRuns) {
  Rng rng(35);
  dag::LayeredDagParams params;
  params.num_tasks = 30;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 8;
  const net::Topology topo = net::random_wan(wan, rng);
  const Schedule a = Bbsa{}.schedule(graph, topo);
  const Schedule b = Bbsa{}.schedule(graph, topo);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  for (dag::TaskId t : graph.all_tasks()) {
    EXPECT_EQ(a.task(t).processor, b.task(t).processor);
  }
}

TEST(Bbsa, BeatsBaOnAverageUnderContention) {
  double ba_total = 0.0;
  double bbsa_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    dag::LayeredDagParams params;
    params.num_tasks = 30;
    dag::TaskGraph graph = dag::random_layered(params, rng);
    dag::rescale_to_ccr(graph, 5.0);
    net::RandomWanParams wan;
    wan.num_processors = 8;
    wan.fanout_min = 2;
    wan.fanout_max = 4;
    const net::Topology topo = net::random_wan(wan, rng);
    ba_total += BasicAlgorithm{}.schedule(graph, topo).makespan();
    bbsa_total += Bbsa{}.schedule(graph, topo).makespan();
  }
  EXPECT_LE(bbsa_total, ba_total * 1.02);
}

}  // namespace
}  // namespace edgesched::sched
