#include "dag/transforms.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"

namespace edgesched::dag {
namespace {

TEST(Transpose, ReversesEveryEdge) {
  const TaskGraph g = fork(3, 2.0, 5.0);
  const TaskGraph t = transpose(g);
  ASSERT_EQ(t.num_tasks(), g.num_tasks());
  ASSERT_EQ(t.num_edges(), g.num_edges());
  for (EdgeId e : g.all_edges()) {
    const Edge& original = g.edge(e);
    bool found = false;
    for (EdgeId te : t.out_edges(original.dst)) {
      found = found || t.edge(te).dst == original.src;
    }
    EXPECT_TRUE(found);
  }
  // fork becomes join.
  EXPECT_EQ(t.entry_tasks().size(), 3u);
  EXPECT_EQ(t.exit_tasks().size(), 1u);
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  Rng rng(3);
  LayeredDagParams params;
  params.num_tasks = 30;
  const TaskGraph g = random_layered(params, rng);
  const TaskGraph tt = transpose(transpose(g));
  ASSERT_EQ(tt.num_edges(), g.num_edges());
  for (TaskId t : g.all_tasks()) {
    EXPECT_EQ(tt.successors(t).size(), g.successors(t).size());
  }
  EXPECT_DOUBLE_EQ(critical_path_length(tt), critical_path_length(g));
}

TEST(MergeChains, FusesAPureChainToOneTask) {
  const TaskGraph g = chain(5, 2.0, 3.0);
  const ChainMerge merged = merge_linear_chains(g);
  EXPECT_EQ(merged.graph.num_tasks(), 1u);
  EXPECT_EQ(merged.graph.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(merged.graph.weight(TaskId(0u)), 10.0);
  for (TaskId t : g.all_tasks()) {
    EXPECT_EQ(merged.representative[t.index()], TaskId(0u));
  }
}

TEST(MergeChains, ForkJoinKeepsParallelism) {
  // source -> {m1..m3} -> sink: no fusable pair (source has 3 succs,
  // sink 3 preds, middles have multi-degree neighbours)... except each
  // middle has in=1/out=1 but its neighbours disqualify nothing — the
  // rule is out(t)==1 && in(succ)==1, so source->middle is not fusable
  // (out(source)=3) and middle->sink is not (in(sink)=3).
  const TaskGraph g = fork_join(3, 2.0, 3.0);
  const ChainMerge merged = merge_linear_chains(g);
  EXPECT_EQ(merged.graph.num_tasks(), g.num_tasks());
  EXPECT_EQ(merged.graph.num_edges(), g.num_edges());
}

TEST(MergeChains, MixedGraph) {
  // a -> b -> c (chain) and a -> c (shortcut): b has in 1/out 1, but
  // fusing a->b is blocked by out(a)=2; b->c is blocked by in(c)=2.
  TaskGraph g;
  const TaskId a = g.add_task(1.0);
  const TaskId b = g.add_task(2.0);
  const TaskId c = g.add_task(3.0);
  g.add_edge(a, b, 1.0);
  g.add_edge(b, c, 2.0);
  g.add_edge(a, c, 7.0);
  const ChainMerge merged = merge_linear_chains(g);
  EXPECT_EQ(merged.graph.num_tasks(), 3u);
  EXPECT_EQ(merged.graph.num_edges(), 3u);
}

TEST(MergeChains, TailChainFusesIntoJoin) {
  // {p1, p2} -> j -> t1 -> t2: j..t2 is a fusable chain.
  TaskGraph g;
  const TaskId p1 = g.add_task(1.0);
  const TaskId p2 = g.add_task(1.0);
  const TaskId j = g.add_task(2.0);
  const TaskId t1 = g.add_task(3.0);
  const TaskId t2 = g.add_task(4.0);
  g.add_edge(p1, j, 1.0);
  g.add_edge(p2, j, 1.0);
  g.add_edge(j, t1, 9.0);
  g.add_edge(t1, t2, 9.0);
  const ChainMerge merged = merge_linear_chains(g);
  EXPECT_EQ(merged.graph.num_tasks(), 3u);  // p1, p2, fused(j,t1,t2)
  EXPECT_EQ(merged.graph.num_edges(), 2u);
  const TaskId fused = merged.representative[j.index()];
  EXPECT_EQ(merged.representative[t1.index()], fused);
  EXPECT_EQ(merged.representative[t2.index()], fused);
  EXPECT_DOUBLE_EQ(merged.graph.weight(fused), 9.0);
}

TEST(MergeChains, PreservesAcyclicityOnRandomGraphs) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    LayeredDagParams params;
    params.num_tasks = 60;
    const TaskGraph g = random_layered(params, rng);
    const ChainMerge merged = merge_linear_chains(g);
    EXPECT_TRUE(merged.graph.is_acyclic());
    EXPECT_LE(merged.graph.num_tasks(), g.num_tasks());
    EXPECT_NEAR(merged.graph.total_computation(),
                g.total_computation(), 1e-9);
  }
}

TEST(InducedSubgraph, ExtractsClosedSubsets) {
  const TaskGraph g = fork_join(3, 2.0, 3.0);
  // source + two middles.
  const Subgraph sub = induced_subgraph(
      g, {TaskId(0u), TaskId(2u), TaskId(3u)});
  EXPECT_EQ(sub.graph.num_tasks(), 3u);
  EXPECT_EQ(sub.graph.num_edges(), 2u);  // source->m1, source->m2
  EXPECT_FALSE(sub.new_id[1].valid());   // the sink was not selected
  EXPECT_TRUE(sub.new_id[0].valid());
}

TEST(Composition, ParallelIsDisjointUnion) {
  const TaskGraph g = parallel_composition(chain(3, 1.0, 1.0),
                                           fork(2, 2.0, 2.0));
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.entry_tasks().size(), 2u);
  EXPECT_DOUBLE_EQ(g.total_computation(), 3.0 + 6.0);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Composition, SequentialBridgesExitsToEntries) {
  // fork(2): 1 entry, 2 exits; join(2): 2 entries, 1 exit.
  const TaskGraph g =
      sequential_composition(fork(2, 1.0, 1.0), join(2, 1.0, 1.0), 7.0);
  EXPECT_EQ(g.num_tasks(), 6u);
  // fork has 2 edges, join has 2, bridge = 2 exits x 2 entries = 4.
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_TRUE(g.is_acyclic());
  // Bridge edges carry the stage cost.
  std::size_t bridges = 0;
  for (EdgeId e : g.all_edges()) {
    if (g.cost(e) == 7.0) {
      ++bridges;
    }
  }
  EXPECT_EQ(bridges, 4u);
}

TEST(Composition, PipelineOfStagesSchedulesEndToEnd) {
  TaskGraph pipeline = chain(2, 2.0, 1.0);
  pipeline = sequential_composition(pipeline, fork_join(3, 1.0, 2.0), 4.0);
  pipeline = sequential_composition(pipeline, chain(2, 2.0, 1.0), 4.0);
  EXPECT_TRUE(pipeline.is_acyclic());
  EXPECT_EQ(pipeline.entry_tasks().size(), 1u);
  EXPECT_EQ(pipeline.exit_tasks().size(), 1u);
  EXPECT_EQ(pipeline.num_tasks(), 2u + 5u + 2u);
}

TEST(Composition, SequentialRejectsEmptyStages) {
  EXPECT_THROW(
      (void)sequential_composition(TaskGraph{}, chain(2), 1.0),
      std::invalid_argument);
}

TEST(InducedSubgraph, RejectsDuplicates) {
  const TaskGraph g = chain(3);
  EXPECT_THROW(
      (void)induced_subgraph(g, {TaskId(0u), TaskId(0u)}),
      std::invalid_argument);
  EXPECT_THROW((void)induced_subgraph(g, {TaskId(9u)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::dag
