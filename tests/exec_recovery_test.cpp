// Online recovery: permanent faults under the reschedule policy must
// replan the unfinished subgraph onto the surviving topology and finish
// every task.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "exec/executor.hpp"
#include "exec/recovery.hpp"
#include "net/builders.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace edgesched::exec {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
};

Instance make_instance(std::uint64_t seed, std::size_t tasks = 20,
                       std::size_t procs = 4) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = tasks;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 1.5);
  net::RandomWanParams wan;
  wan.num_processors = procs;
  net::Topology topo = net::random_wan(wan, rng);
  return Instance{std::move(graph), std::move(topo)};
}

void expect_all_tasks_done(const ExecutionReport& report,
                           const dag::TaskGraph& graph) {
  ASSERT_EQ(report.tasks.size(), graph.num_tasks());
  for (const TaskRecord& record : report.tasks) {
    EXPECT_GE(record.attempts, 1u) << "task " << record.task;
    EXPECT_GT(record.finish, 0.0) << "task " << record.task;
  }
}

TEST(Recovery, PermanentProcessorFaultReschedulesRemaining) {
  // The acceptance scenario: a scripted permanent processor failure
  // mid-run, reschedule policy with validated recovery plans; every task
  // must still complete, none on the dead processor after the fault.
  const Instance inst = make_instance(31);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  const net::NodeId dead = inst.topo.processors().front();
  const double fault_time = schedule.makespan() * 0.3;
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kReschedule;
  options.validate_recovery = true;  // validator-clean recovery plans
  options.faults.fail_processor(fault_time, dead, /*permanent=*/true);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed) << report.failure;
  expect_all_tasks_done(report, inst.graph);
  EXPECT_EQ(report.faults_survived, 1u);
  EXPECT_GE(report.reschedules, 1u);
  ASSERT_FALSE(report.recoveries.empty());
  EXPECT_EQ(report.recoveries.front().action, "reschedule");
  EXPECT_EQ(report.recoveries.front().algorithm, schedule.algorithm());
  EXPECT_EQ(report.recoveries.front().processors_surviving,
            inst.topo.num_processors() - 1);
  // Nothing may finish on the dead processor after it died.
  for (const TaskRecord& record : report.tasks) {
    if (record.processor == dead.value()) {
      EXPECT_LE(record.finish, fault_time) << "task " << record.task;
    }
  }
}

TEST(Recovery, RescheduleWorksForEveryAlgorithm) {
  const Instance inst = make_instance(32, 16, 4);
  for (const char* name : {"ba", "oihsa", "bbsa", "packet-ba", "classic"}) {
    const sched::Schedule schedule =
        sched::make_scheduler(name)->schedule(inst.graph, inst.topo);
    ExecutionOptions options;
    options.policy = RecoveryPolicy::kReschedule;
    options.faults.fail_processor(schedule.makespan() * 0.4,
                                  inst.topo.processors().back(), true);
    const ExecutionReport report =
        execute(inst.graph, inst.topo, schedule, options);
    ASSERT_TRUE(report.completed) << name << ": " << report.failure;
    expect_all_tasks_done(report, inst.graph);
  }
}

TEST(Recovery, CrossAlgorithmReplanning) {
  // Execute a BBSA plan but replan failures with OIHSA.
  const Instance inst = make_instance(33);
  const sched::Schedule schedule =
      sched::make_scheduler("bbsa")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kReschedule;
  options.recovery_algorithm = "oihsa";
  options.faults.fail_processor(schedule.makespan() * 0.5,
                                inst.topo.processors().front(), true);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed) << report.failure;
  ASSERT_FALSE(report.recoveries.empty());
  EXPECT_EQ(report.recoveries.front().algorithm, "OIHSA");
}

TEST(Recovery, SurvivesTwoSequentialProcessorLosses) {
  const Instance inst = make_instance(34, 24, 5);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kReschedule;
  options.faults.fail_processor(schedule.makespan() * 0.2,
                                inst.topo.processors()[0], true);
  options.faults.fail_processor(schedule.makespan() * 2.0,
                                inst.topo.processors()[1], true);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(report.completed) << report.failure;
  expect_all_tasks_done(report, inst.graph);
  EXPECT_EQ(report.faults_survived, report.faults_injected);
}

TEST(Recovery, RescheduleDelayPushesTheReplanOut) {
  const Instance inst = make_instance(35);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kReschedule;
  options.faults.fail_processor(schedule.makespan() * 0.3,
                                inst.topo.processors().front(), true);
  const ExecutionReport plain =
      execute(inst.graph, inst.topo, schedule, options);
  options.reschedule_delay = 25.0;
  const ExecutionReport delayed =
      execute(inst.graph, inst.topo, schedule, options);
  ASSERT_TRUE(plain.completed) << plain.failure;
  ASSERT_TRUE(delayed.completed) << delayed.failure;
  EXPECT_GT(delayed.achieved_makespan, plain.achieved_makespan);
}

TEST(Recovery, LastProcessorLossIsUnrecoverable) {
  const dag::TaskGraph graph = dag::chain(4, 5.0, 1.0);
  Rng rng(6);
  const net::Topology topo = net::switched_star(1, net::SpeedConfig{}, rng);
  const sched::Schedule schedule =
      sched::make_scheduler("ba")->schedule(graph, topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kReschedule;
  options.faults.fail_processor(1.0, topo.processors().front(), true);
  const ExecutionReport report = execute(graph, topo, schedule, options);
  EXPECT_FALSE(report.completed);
  EXPECT_FALSE(report.failure.empty());
  ASSERT_FALSE(report.recoveries.empty());
  EXPECT_EQ(report.recoveries.back().action, "abort");
}

TEST(Recovery, RescheduleLimitAborts) {
  const Instance inst = make_instance(36, 18, 4);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(inst.graph, inst.topo);
  ExecutionOptions options;
  options.policy = RecoveryPolicy::kReschedule;
  options.max_reschedules = 0;
  options.faults.fail_processor(schedule.makespan() * 0.3,
                                inst.topo.processors().front(), true);
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule, options);
  EXPECT_FALSE(report.completed);
  EXPECT_NE(report.failure.find("reschedule"), std::string::npos)
      << report.failure;
}

TEST(Recovery, SurvivingTopologyDropsDeadResources) {
  Rng rng(7);
  const net::Topology topo = net::switched_star(4, net::SpeedConfig{}, rng);
  std::vector<bool> dead_proc(topo.num_nodes(), false);
  dead_proc[topo.processors()[1].index()] = true;
  const SurvivingTopology surv = surviving_topology(
      topo, dead_proc, std::vector<bool>(topo.num_links(), false));
  EXPECT_EQ(surv.topology.num_processors(), 3u);
  // The dead processor has no image; survivors map both ways.
  EXPECT_FALSE(surv.to_new_node[topo.processors()[1].index()].valid());
  for (const net::NodeId p : surv.topology.processors()) {
    const net::NodeId old = surv.to_old_node[p.index()];
    EXPECT_TRUE(old.valid());
    EXPECT_EQ(surv.to_new_node[old.index()], p);
  }
  // Star topology: each lost cable removes both directions.
  EXPECT_EQ(surv.topology.num_links(), topo.num_links() - 2);
}

TEST(Recovery, RemainingWorkRerunsLostFinishedProducers) {
  // a -> b -> c; b finished but its output was lost and c still needs it:
  // b must re-run, a survives as a stub.
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(1.0);
  const dag::TaskId b = graph.add_task(1.0);
  const dag::TaskId c = graph.add_task(1.0);
  (void)graph.add_edge(a, b, 1.0);
  (void)graph.add_edge(b, c, 1.0);
  std::vector<bool> finished = {true, true, false};
  std::vector<bool> lost = {false, true, false};
  const RemainingWork work = remaining_work(graph, finished, lost);
  EXPECT_EQ(work.rerun, (std::vector<dag::TaskId>{b, c}));
  EXPECT_EQ(work.stubs, (std::vector<dag::TaskId>{a}));
}

}  // namespace
}  // namespace edgesched::exec
