#include "dag/generators.hpp"

#include <gtest/gtest.h>

#include "dag/properties.hpp"

namespace edgesched::dag {
namespace {

TEST(Chain, Structure) {
  const TaskGraph g = chain(4, 2.0, 3.0);
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Chain, SingleTask) {
  const TaskGraph g = chain(1);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Fork, Structure) {
  const TaskGraph g = fork(5, 1.0, 1.0);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.successors(TaskId(0u)).size(), 5u);
}

TEST(Join, Structure) {
  const TaskGraph g = join(5, 1.0, 1.0);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.predecessors(TaskId(5u)).size(), 5u);
}

TEST(ForkJoin, Structure) {
  const TaskGraph g = fork_join(4, 1.0, 1.0);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  const GraphShape s = shape(g);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.max_width, 4u);
}

TEST(OutTree, Structure) {
  const TaskGraph g = out_tree(3);
  EXPECT_EQ(g.num_tasks(), 7u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 4u);
}

TEST(InTree, Structure) {
  const TaskGraph g = in_tree(3);
  EXPECT_EQ(g.num_tasks(), 7u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.entry_tasks().size(), 4u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Fft, Structure) {
  const TaskGraph g = fft(8);
  // 4 rows of 8 tasks; each of the 3 stages adds 2 edges per task.
  EXPECT_EQ(g.num_tasks(), 32u);
  EXPECT_EQ(g.num_edges(), 48u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 8u);
  EXPECT_EQ(g.exit_tasks().size(), 8u);
  EXPECT_THROW((void)fft(6), std::invalid_argument);
}

TEST(GaussianElimination, Structure) {
  const TaskGraph g = gaussian_elimination(4);
  // Pivots: 3; updates: 3 + 2 + 1 = 6.
  EXPECT_EQ(g.num_tasks(), 9u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_THROW((void)gaussian_elimination(1), std::invalid_argument);
}

TEST(Stencil1d, Structure) {
  const TaskGraph g = stencil_1d(3, 4);
  EXPECT_EQ(g.num_tasks(), 12u);
  // Per step transition: 4 self + 3 left + 3 right = 10 edges; 2 steps.
  EXPECT_EQ(g.num_edges(), 20u);
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Diamond, Structure) {
  const TaskGraph g = diamond(3);
  EXPECT_EQ(g.num_tasks(), 9u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
  const GraphShape s = shape(g);
  EXPECT_EQ(s.depth, 5u);  // wavefront of a 3x3 grid
}

TEST(Cholesky, TinyFactorizations) {
  // 1 tile: a single POTRF.
  EXPECT_EQ(cholesky(1).num_tasks(), 1u);
  EXPECT_EQ(cholesky(1).num_edges(), 0u);
  // 2 tiles: POTRF(0), TRSM(1,0), SYRK(1,1,0), POTRF(1).
  const TaskGraph g = cholesky(2);
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Cholesky, KernelCountsMatchTheFormula) {
  // T tiles: T potrf, T(T-1)/2 trsm, T(T-1)/2 syrk, T(T-1)(T-2)/6 gemm.
  for (std::size_t t : {3u, 4u, 6u}) {
    const TaskGraph g = cholesky(t);
    const std::size_t expected =
        t + t * (t - 1) / 2 + t * (t - 1) / 2 + t * (t - 1) * (t - 2) / 6;
    EXPECT_EQ(g.num_tasks(), expected) << t;
    EXPECT_TRUE(g.is_acyclic());
  }
}

TEST(Cholesky, CriticalPathGrowsLinearly) {
  // The potrf->trsm->syrk->potrf spine makes the critical path Θ(tiles).
  const double cp4 = critical_path_length(cholesky(4));
  const double cp8 = critical_path_length(cholesky(8));
  EXPECT_GT(cp8, cp4 * 1.5);
  EXPECT_THROW((void)cholesky(0), std::invalid_argument);
}

class RandomLayeredTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLayeredTest, StructuralInvariants) {
  Rng rng(GetParam());
  LayeredDagParams params;
  params.num_tasks = 80;
  const TaskGraph g = random_layered(params, rng);
  EXPECT_EQ(g.num_tasks(), 80u);
  EXPECT_TRUE(g.is_acyclic());

  // Connectivity pass guarantees: only layer-0 tasks lack predecessors,
  // only last-layer tasks lack successors.
  const std::vector<std::size_t> levels = precedence_levels(g);
  for (TaskId t : g.all_tasks()) {
    if (g.in_edges(t).empty()) {
      EXPECT_EQ(levels[t.index()], 0u);
    }
  }

  // Costs stay inside the paper's U(1, 1000) ranges.
  for (TaskId t : g.all_tasks()) {
    EXPECT_GE(g.weight(t), 1.0);
    EXPECT_LE(g.weight(t), 1000.0);
  }
  for (EdgeId e : g.all_edges()) {
    EXPECT_GE(g.cost(e), 1.0);
    EXPECT_LE(g.cost(e), 1000.0);
  }
}

TEST_P(RandomLayeredTest, DeterministicForSeed) {
  LayeredDagParams params;
  params.num_tasks = 50;
  Rng rng1(GetParam());
  Rng rng2(GetParam());
  const TaskGraph a = random_layered(params, rng1);
  const TaskGraph b = random_layered(params, rng2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e : a.all_edges()) {
    EXPECT_EQ(a.edge(e).src, b.edge(e).src);
    EXPECT_EQ(a.edge(e).dst, b.edge(e).dst);
    EXPECT_DOUBLE_EQ(a.edge(e).cost, b.edge(e).cost);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLayeredTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u,
                                           99999u));

TEST(RandomLayered, WidthFactorControlsShape) {
  LayeredDagParams wide;
  wide.num_tasks = 100;
  wide.width_factor = 3.0;
  LayeredDagParams narrow = wide;
  narrow.width_factor = 0.4;
  Rng rng1(7);
  Rng rng2(7);
  const GraphShape wide_shape = shape(random_layered(wide, rng1));
  const GraphShape narrow_shape = shape(random_layered(narrow, rng2));
  EXPECT_GT(wide_shape.max_width, narrow_shape.max_width);
  EXPECT_LT(wide_shape.depth, narrow_shape.depth);
}

TEST(RandomLayered, RejectsBadParams) {
  Rng rng(1);
  LayeredDagParams params;
  params.num_tasks = 0;
  EXPECT_THROW((void)random_layered(params, rng), std::invalid_argument);
  params.num_tasks = 10;
  params.comp_min = 10.0;
  params.comp_max = 1.0;
  EXPECT_THROW((void)random_layered(params, rng), std::invalid_argument);
}

TEST(Generators, RejectZeroSizes) {
  EXPECT_THROW((void)chain(0), std::invalid_argument);
  EXPECT_THROW((void)fork(0), std::invalid_argument);
  EXPECT_THROW((void)join(0), std::invalid_argument);
  EXPECT_THROW((void)fork_join(0), std::invalid_argument);
  EXPECT_THROW((void)out_tree(0), std::invalid_argument);
  EXPECT_THROW((void)in_tree(0), std::invalid_argument);
  EXPECT_THROW((void)stencil_1d(0, 3), std::invalid_argument);
  EXPECT_THROW((void)diamond(0), std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::dag
