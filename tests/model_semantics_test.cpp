// Tests of the scheduling-model option knobs documented in DESIGN.md §6:
// communication departure time, task placement policy, BA's processor
// selection mode, and OIHSA's estimate variant. Each knob must keep
// schedules valid, and the relationships the model implies must hold.
#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/assignment.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
};

Instance make(std::uint64_t seed, double ccr = 3.0) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = 30;
  Instance inst{dag::random_layered(params, rng), net::Topology{}};
  dag::rescale_to_ccr(inst.graph, ccr);
  net::RandomWanParams wan;
  wan.num_processors = 6;
  inst.topo = net::random_wan(wan, rng);
  return inst;
}

TEST(ModelSemantics, EveryKnobKeepsBaValid) {
  const Instance inst = make(1);
  for (auto selection : {BaProcessorSelection::kReadyTimeEft,
                         BaProcessorSelection::kTentativeEft}) {
    for (bool eager : {false, true}) {
      for (bool insertion : {false, true}) {
        BasicAlgorithm::Options options;
        options.selection = selection;
        options.eager_communication = eager;
        options.task_insertion = insertion;
        const Schedule s =
            BasicAlgorithm(options).schedule(inst.graph, inst.topo);
        validate_or_throw(inst.graph, inst.topo, s);
      }
    }
  }
}

TEST(ModelSemantics, EveryKnobKeepsOihsaValid) {
  const Instance inst = make(2);
  for (bool eager : {false, true}) {
    for (bool insertion : {false, true}) {
      for (bool estimate : {false, true}) {
        Oihsa::Options options;
        options.eager_communication = eager;
        options.task_insertion = insertion;
        options.insertion_aware_estimate = estimate;
        const Schedule s =
            Oihsa(options).schedule(inst.graph, inst.topo);
        validate_or_throw(inst.graph, inst.topo, s);
      }
    }
  }
}

TEST(ModelSemantics, EveryKnobKeepsBbsaValid) {
  const Instance inst = make(3);
  for (bool eager : {false, true}) {
    for (bool insertion : {false, true}) {
      Bbsa::Options options;
      options.eager_communication = eager;
      options.task_insertion = insertion;
      const Schedule s = Bbsa(options).schedule(inst.graph, inst.topo);
      validate_or_throw(inst.graph, inst.topo, s);
    }
  }
}

TEST(ModelSemantics, EagerShippingNeverLater) {
  // Per edge: shipping at the source's finish can only start transfers
  // earlier than waiting for the ready moment, so on average across
  // seeds eager makespans should not be (much) worse. We assert the mean
  // relationship, not per instance.
  double ready_total = 0.0;
  double eager_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make(seed, 5.0);
    Oihsa::Options ready;
    Oihsa::Options eager;
    eager.eager_communication = true;
    ready_total +=
        Oihsa(ready).schedule(inst.graph, inst.topo).makespan();
    eager_total +=
        Oihsa(eager).schedule(inst.graph, inst.topo).makespan();
  }
  EXPECT_LE(eager_total, ready_total * 1.05);
}

TEST(ModelSemantics, TentativeBaIsStrongerThanBlindBa) {
  // Sinnen's tentative evaluation sees actual contention; it must beat
  // the communication-blind selection on contended instances on average.
  double blind_total = 0.0;
  double tentative_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Instance inst = make(seed, 5.0);
    BasicAlgorithm::Options tentative;
    tentative.selection = BaProcessorSelection::kTentativeEft;
    blind_total +=
        BasicAlgorithm{}.schedule(inst.graph, inst.topo).makespan();
    tentative_total += BasicAlgorithm(tentative)
                           .schedule(inst.graph, inst.topo)
                           .makespan();
  }
  EXPECT_LT(tentative_total, blind_total);
}

TEST(ModelSemantics, AppendPlacementNeverOverlapsAndOrdersByCommit) {
  const Instance inst = make(4);
  Oihsa::Options append;
  append.task_insertion = false;
  const Schedule s = Oihsa(append).schedule(inst.graph, inst.topo);
  validate_or_throw(inst.graph, inst.topo, s);
}

TEST(ModelSemantics, HopDelayDelaysMultiHopTransfers) {
  // Two hops through a switch: with hop delay d the transfer arrives d
  // later than without (one intermediate station).
  dag::TaskGraph graph = dag::chain(2, 2.0, 4.0);
  net::Topology topo;
  const net::NodeId p0 = topo.add_processor(1.0);
  const net::NodeId p1 = topo.add_processor(1.0);
  const net::NodeId sw = topo.add_switch();
  topo.add_duplex_link(p0, sw, 1.0);
  topo.add_duplex_link(sw, p1, 1.0);
  // Pin the tasks apart to force the transfer.
  const Assignment split{p0, p1};

  const Schedule base = schedule_assignment(graph, topo, split);
  EXPECT_DOUBLE_EQ(base.makespan(), 8.0);  // ship 2, arrive 6, run 2

  BasicAlgorithm::Options delayed;
  delayed.hop_delay = 1.5;
  const Schedule with_delay =
      BasicAlgorithm(delayed).schedule(graph, topo);
  validate_or_throw(graph, topo, with_delay);
  if (with_delay.task(dag::TaskId(0u)).processor !=
      with_delay.task(dag::TaskId(1u)).processor) {
    EXPECT_NEAR(with_delay.communication(dag::EdgeId(0u)).arrival, 7.5,
                1e-9);
  }
}

TEST(ModelSemantics, HopDelayKeepsAllSchedulersValid) {
  const Instance inst = make(6, 2.0);
  BasicAlgorithm::Options ba;
  ba.hop_delay = 0.5;
  Oihsa::Options oihsa;
  oihsa.hop_delay = 0.5;
  Bbsa::Options bbsa;
  bbsa.hop_delay = 0.5;
  validate_or_throw(inst.graph, inst.topo,
                    BasicAlgorithm(ba).schedule(inst.graph, inst.topo));
  validate_or_throw(inst.graph, inst.topo,
                    Oihsa(oihsa).schedule(inst.graph, inst.topo));
  validate_or_throw(inst.graph, inst.topo,
                    Bbsa(bbsa).schedule(inst.graph, inst.topo));
}

TEST(ModelSemantics, HopDelayNeverSpeedsUp) {
  double plain_total = 0.0;
  double delayed_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Instance inst = make(seed, 2.0);
    Oihsa::Options delayed;
    delayed.hop_delay = 2.0;
    plain_total +=
        Oihsa{}.schedule(inst.graph, inst.topo).makespan();
    delayed_total +=
        Oihsa(delayed).schedule(inst.graph, inst.topo).makespan();
  }
  EXPECT_GE(delayed_total, plain_total * 0.99);
}

TEST(ModelSemantics, ReadyMomentDominatesEdgeStart) {
  // Under the dynamic model every remote transfer starts at or after the
  // latest predecessor finish of its destination task.
  const Instance inst = make(5, 5.0);
  const Schedule s = Oihsa{}.schedule(inst.graph, inst.topo);
  for (dag::TaskId t : inst.graph.all_tasks()) {
    double ready_moment = 0.0;
    for (dag::EdgeId e : inst.graph.in_edges(t)) {
      ready_moment = std::max(
          ready_moment, s.task(inst.graph.edge(e).src).finish);
    }
    for (dag::EdgeId e : inst.graph.in_edges(t)) {
      const EdgeCommunication& comm = s.communication(e);
      if (comm.kind == EdgeCommunication::Kind::kExclusive) {
        EXPECT_GE(comm.occupations.front().earliest_start,
                  ready_moment - 1e-6);
      }
    }
  }
}

}  // namespace
}  // namespace edgesched::sched
