#include "timeline/link_timeline.hpp"

#include <gtest/gtest.h>

namespace edgesched::timeline {
namespace {

dag::EdgeId edge(std::size_t i) { return dag::EdgeId(i); }

TEST(LinkTimeline, EmptyTimelinePlacesAtEarliestStart) {
  LinkTimeline tl;
  const Placement p = tl.probe_basic(5.0, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(p.earliest_start, 5.0);
  EXPECT_DOUBLE_EQ(p.start, 5.0);
  EXPECT_DOUBLE_EQ(p.finish, 7.0);
  EXPECT_EQ(p.position, 0u);
}

TEST(LinkTimeline, MinFinishStretchesVirtualStart) {
  LinkTimeline tl;
  // Previous hop finishes at 10; this hop only needs 2 time units, so it
  // occupies [8, 10] (virtual start, §2.2).
  const Placement p = tl.probe_basic(1.0, 10.0, 2.0);
  EXPECT_DOUBLE_EQ(p.earliest_start, 1.0);
  EXPECT_DOUBLE_EQ(p.start, 8.0);
  EXPECT_DOUBLE_EQ(p.finish, 10.0);
}

TEST(LinkTimeline, CommitKeepsSlotsSorted) {
  LinkTimeline tl;
  const Placement late = tl.probe_basic(10.0, 0.0, 2.0);
  tl.commit(late, edge(0));
  const Placement early = tl.probe_basic(0.0, 0.0, 2.0);
  tl.commit(early, edge(1));
  ASSERT_EQ(tl.size(), 2u);
  EXPECT_DOUBLE_EQ(tl.slots()[0].start, 0.0);
  EXPECT_DOUBLE_EQ(tl.slots()[1].start, 10.0);
  EXPECT_EQ(tl.slots()[0].edge, edge(1));
}

TEST(LinkTimeline, FillsGapBetweenSlots) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));    // [0, 2]
  tl.commit(tl.probe_basic(10.0, 0.0, 2.0), edge(1));   // [10, 12]
  const Placement mid = tl.probe_basic(0.0, 0.0, 5.0);  // fits in [2, 10]
  EXPECT_DOUBLE_EQ(mid.start, 2.0);
  EXPECT_DOUBLE_EQ(mid.finish, 7.0);
  EXPECT_EQ(mid.position, 1u);
}

TEST(LinkTimeline, SkipsTooSmallGap) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));   // [0, 2]
  tl.commit(tl.probe_basic(3.0, 0.0, 2.0), edge(1));   // [3, 5]
  const Placement p = tl.probe_basic(0.0, 0.0, 2.0);   // gap [2,3] too small
  EXPECT_DOUBLE_EQ(p.start, 5.0);
  EXPECT_EQ(p.position, 2u);
}

TEST(LinkTimeline, GapMustCoverMinFinishToo) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));   // [0, 2]
  tl.commit(tl.probe_basic(8.0, 0.0, 4.0), edge(1));   // [8, 12]
  // Duration 2 fits in [2, 8], but the previous hop only finishes at 9, so
  // the slot would be [7, 9], overlapping; must go after [8, 12].
  const Placement p = tl.probe_basic(0.0, 9.0, 2.0);
  EXPECT_DOUBLE_EQ(p.finish, 14.0);
  EXPECT_DOUBLE_EQ(p.start, 12.0);
  EXPECT_EQ(p.position, 2u);
}

TEST(LinkTimeline, ExactFitGapIsUsed) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));  // [0, 2]
  tl.commit(tl.probe_basic(5.0, 0.0, 2.0), edge(1));  // [5, 7]
  const Placement p = tl.probe_basic(0.0, 0.0, 3.0);  // exactly [2, 5]
  EXPECT_DOUBLE_EQ(p.start, 2.0);
  EXPECT_DOUBLE_EQ(p.finish, 5.0);
}

TEST(LinkTimeline, BusyTimeAndLastFinish) {
  LinkTimeline tl;
  EXPECT_DOUBLE_EQ(tl.last_finish(), 0.0);
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));
  tl.commit(tl.probe_basic(5.0, 0.0, 3.0), edge(1));
  EXPECT_DOUBLE_EQ(tl.busy_time(), 5.0);
  EXPECT_DOUBLE_EQ(tl.last_finish(), 8.0);
}

TEST(LinkTimeline, EraseRemovesSlot) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));
  tl.commit(tl.probe_basic(5.0, 0.0, 3.0), edge(1));
  tl.erase(0);
  ASSERT_EQ(tl.size(), 1u);
  EXPECT_EQ(tl.slots()[0].edge, edge(1));
}

TEST(LinkTimeline, ShiftSlotDefersOnly) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));
  tl.shift_slot(0, 1.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(tl.slots()[0].start, 1.0);
  EXPECT_THROW(tl.shift_slot(0, 0.0, 0.0, 2.0), InternalError);
}

TEST(LinkTimeline, InvariantCheckerCatchesOverlap) {
  LinkTimeline tl;
  tl.commit(tl.probe_basic(0.0, 0.0, 2.0), edge(0));
  tl.commit(tl.probe_basic(5.0, 0.0, 2.0), edge(1));
  tl.shift_slot(0, 0.0, 4.0, 6.0);  // now overlaps [5, 7]
  EXPECT_THROW(tl.check_invariants(), InternalError);
}

TEST(LinkTimeline, ManySequentialCommitsStaySorted) {
  LinkTimeline tl;
  for (std::size_t i = 0; i < 50; ++i) {
    tl.commit(tl.probe_basic(0.0, 0.0, 1.0), edge(i));
  }
  EXPECT_EQ(tl.size(), 50u);
  EXPECT_DOUBLE_EQ(tl.last_finish(), 50.0);
  tl.check_invariants();
}

}  // namespace
}  // namespace edgesched::timeline
