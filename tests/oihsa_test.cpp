#include "sched/oihsa.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

net::Topology star(std::size_t procs) {
  Rng rng(1);
  return net::switched_star(procs, net::SpeedConfig{}, rng);
}

TEST(Oihsa, SingleProcessorSerialises) {
  const net::Topology topo = star(1);
  const dag::TaskGraph graph = dag::fork_join(3, 2.0, 5.0);
  const Schedule s = Oihsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(Oihsa, KeepsChainLocalWhenCommIsExpensive) {
  const dag::TaskGraph graph = dag::chain(2, 2.0, 4.0);
  const net::Topology topo = star(2);
  const Schedule s = Oihsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.task(dag::TaskId(0u)).processor,
            s.task(dag::TaskId(1u)).processor);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
}

TEST(Oihsa, PrefersFastProcessorInHeterogeneousSystems) {
  dag::TaskGraph graph;
  (void)graph.add_task(10.0);
  net::Topology topo;
  const net::NodeId slow = topo.add_processor(1.0, "slow");
  const net::NodeId fast = topo.add_processor(5.0, "fast");
  topo.add_duplex_link(slow, fast, 1.0);
  const Schedule s = Oihsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.task(dag::TaskId(0u)).processor, fast);
}

TEST(Oihsa, EdgePriorityOrdersBigEdgesFirst) {
  // Join of two predecessors with very different edge costs into one sink
  // on a third processor: the big edge must get the early link slot.
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(1.0, "a");
  const dag::TaskId b = graph.add_task(1.0, "b");
  const dag::TaskId c = graph.add_task(1.0, "c");
  const dag::EdgeId small = graph.add_edge(a, c, 1.0);
  const dag::EdgeId big = graph.add_edge(b, c, 8.0);
  const net::Topology topo = star(3);
  const Schedule s = Oihsa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  const EdgeCommunication& comm_small = s.communication(small);
  const EdgeCommunication& comm_big = s.communication(big);
  if (comm_small.kind == EdgeCommunication::Kind::kExclusive &&
      comm_big.kind == EdgeCommunication::Kind::kExclusive &&
      !comm_big.occupations.empty() && !comm_small.occupations.empty()) {
    // Both cross the network towards c; where they share the inbound
    // link, the big edge was booked first and cannot start later than
    // the contended continuation of the small edge.
    EXPECT_LE(comm_big.occupations.back().start,
              comm_small.occupations.back().finish);
  }
}

TEST(Oihsa, NeverWorseThanBaOnContendedJoin) {
  // Many cheap producers feeding one consumer through a single switch —
  // the scenario optimal insertion and modified routing target.
  const dag::TaskGraph graph = dag::join(6, 1.0, 5.0);
  const net::Topology topo = star(4);
  const Schedule ours = Oihsa{}.schedule(graph, topo);
  const Schedule base = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, ours);
  validate_or_throw(graph, topo, base);
  EXPECT_LE(ours.makespan(), base.makespan() * 1.25);
}

TEST(Oihsa, AllOptionCombinationsProduceValidSchedules) {
  Rng rng(8);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 6;
  Rng net_rng(9);
  const net::Topology topo = net::random_wan(wan, net_rng);
  for (bool edge_priority : {false, true}) {
    for (bool routing : {false, true}) {
      for (bool insertion : {false, true}) {
        Oihsa::Options options;
        options.edge_priority_by_cost = edge_priority;
        options.modified_routing = routing;
        options.optimal_insertion = insertion;
        const Schedule s = Oihsa(options).schedule(graph, topo);
        validate_or_throw(graph, topo, s);
      }
    }
  }
}

TEST(Oihsa, DeterministicAcrossRuns) {
  Rng rng(15);
  dag::LayeredDagParams params;
  params.num_tasks = 30;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 8;
  Rng net_rng(16);
  const net::Topology topo = net::random_wan(wan, net_rng);
  const Schedule a = Oihsa{}.schedule(graph, topo);
  const Schedule b = Oihsa{}.schedule(graph, topo);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  for (dag::TaskId t : graph.all_tasks()) {
    EXPECT_EQ(a.task(t).processor, b.task(t).processor);
    EXPECT_DOUBLE_EQ(a.task(t).start, b.task(t).start);
  }
}

TEST(Oihsa, MakespanAtLeastComputationCriticalPath) {
  Rng rng(21);
  dag::LayeredDagParams params;
  params.num_tasks = 40;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  const net::Topology topo = star(4);  // homogeneous speed 1
  const Schedule s = Oihsa{}.schedule(graph, topo);
  const auto bl = dag::bottom_levels_computation_only(graph);
  const double lower_bound = *std::max_element(bl.begin(), bl.end());
  EXPECT_GE(s.makespan(), lower_bound - 1e-6);
}

TEST(Oihsa, BeatsBasicInsertionOnAverage) {
  // Statistical check over fixed seeds: with contention present, OIHSA's
  // mean makespan does not exceed BA's. Individual instances may go
  // either way; the average must not.
  double ba_total = 0.0;
  double oihsa_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    dag::LayeredDagParams params;
    params.num_tasks = 30;
    dag::TaskGraph graph = dag::random_layered(params, rng);
    dag::rescale_to_ccr(graph, 5.0);
    net::RandomWanParams wan;
    wan.num_processors = 8;
    wan.fanout_min = 2;
    wan.fanout_max = 4;
    const net::Topology topo = net::random_wan(wan, rng);
    ba_total += BasicAlgorithm{}.schedule(graph, topo).makespan();
    oihsa_total += Oihsa{}.schedule(graph, topo).makespan();
  }
  EXPECT_LE(oihsa_total, ba_total * 1.02);
}

}  // namespace
}  // namespace edgesched::sched
