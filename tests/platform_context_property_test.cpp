// PlatformContext equivalence fuzz suite: splitting immutable
// per-topology platform state (static route table, cached reductions)
// from per-run workspaces must be a pure refactor. For every
// engine-backed registry algorithm over a few hundred random instances,
// scheduling through a shared PlatformContext must reproduce the
// plain-topology path byte for byte (canonical form, doubles as bit
// patterns) — including the second run through the same context, which
// exercises a recycled pooled workspace rather than a fresh one.
//
// The concurrent suite shares one context across many threads cycling
// through the sweep algorithms; it is part of the TSan job, so a data
// race in the route table, the workspace pool or the run-epoch memo
// fails the build rather than corrupting a schedule.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/platform.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"
#include "schedule_canon.hpp"
#include "svc/scheduler_service.hpp"
#include "util/rng.hpp"

namespace edgesched::sched {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topology;
};

// Everything about the instance — size, shape, CCR, topology family —
// is drawn from the one Rng(seed), so the seed alone replays it.
Instance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = static_cast<std::size_t>(rng.uniform_int(10, 30));
  dag::TaskGraph graph = dag::random_layered(params, rng);
  const double ccrs[] = {0.5, 2.0, 5.0, 10.0};
  dag::rescale_to_ccr(graph, ccrs[rng.uniform_int(0, 3)]);

  net::SpeedConfig speeds;
  speeds.heterogeneous = (seed % 3 == 0);
  net::Topology topology = [&]() -> net::Topology {
    switch (rng.uniform_int(0, 4)) {
      case 0: return net::fully_connected(4, speeds, rng);
      case 1: return net::switched_star(5, speeds, rng);
      case 2: return net::ring(5, speeds, rng);
      case 3: return net::bus(4, speeds, rng);
      default: {
        net::RandomWanParams wan;
        wan.num_processors = 8;
        wan.speeds = speeds;
        return net::random_wan(wan, rng);
      }
    }
  }();
  return Instance{std::move(graph), std::move(topology)};
}

std::vector<const AlgorithmEntry*> engine_backed_entries() {
  std::vector<const AlgorithmEntry*> entries;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    if (entry.engine_backed()) {
      entries.push_back(&entry);
    }
  }
  return entries;
}

// The core equivalence oracle: schedule(graph, topology) versus
// schedule(graph, shared context), twice through the context so the
// second run reuses a pooled workspace.
TEST(PlatformContextProperty, EngineBackedAlgorithmsAreByteIdentical) {
  const std::vector<const AlgorithmEntry*> entries = engine_backed_entries();
  ASSERT_FALSE(entries.empty());
  constexpr std::uint64_t kInstances = 200;
  for (std::uint64_t seed = 1; seed <= kInstances; ++seed) {
    const Instance instance = make_instance(seed);
    const PlatformContext platform(instance.topology);
    for (const AlgorithmEntry* entry : entries) {
      const std::unique_ptr<Scheduler> scheduler = entry->make();
      const Schedule baseline =
          scheduler->schedule(instance.graph, instance.topology);
      validate_or_throw(instance.graph, instance.topology, baseline);
      const std::string want =
          test::canonical_schedule(instance.graph, baseline);

      const Schedule first = scheduler->schedule(instance.graph, platform);
      EXPECT_EQ(want, test::canonical_schedule(instance.graph, first))
          << entry->key << " diverged via fresh workspace, seed " << seed;

      const Schedule second = scheduler->schedule(instance.graph, platform);
      EXPECT_EQ(want, test::canonical_schedule(instance.graph, second))
          << entry->key << " diverged via recycled workspace, seed " << seed;
    }
  }
}

// Non-engine schedulers (classic model, GA, SA) take the default
// base-class forwarding path: context scheduling must match the
// topology overload exactly there too.
TEST(PlatformContextProperty, DefaultForwardingMatchesTopologyPath) {
  for (const char* key : {"classic", "ga", "sa"}) {
    const AlgorithmEntry* entry = find_algorithm(key);
    ASSERT_NE(entry, nullptr) << key;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance instance = make_instance(seed);
      const PlatformContext platform(instance.topology);
      const std::unique_ptr<Scheduler> scheduler = entry->make();
      const Schedule baseline =
          scheduler->schedule(instance.graph, instance.topology);
      const Schedule via_platform =
          scheduler->schedule(instance.graph, platform);
      EXPECT_EQ(test::canonical_schedule(instance.graph, baseline),
                test::canonical_schedule(instance.graph, via_platform))
          << key << " seed " << seed;
    }
  }
}

// N threads hammer one shared context concurrently, cycling through the
// sweep algorithms. Every schedule must equal the serial reference —
// and under TSan this doubles as the data-race proof for the route
// table, the run-epoch memo and the workspace pool.
TEST(PlatformContextProperty, ConcurrentSharingIsRaceFreeAndDeterministic) {
  const Instance instance = make_instance(42);
  const PlatformContext platform(instance.topology);
  const std::vector<const AlgorithmEntry*> entries = engine_backed_entries();

  std::vector<std::string> reference;
  reference.reserve(entries.size());
  for (const AlgorithmEntry* entry : entries) {
    reference.push_back(test::canonical_schedule(
        instance.graph,
        entry->make()->schedule(instance.graph, instance.topology)));
  }

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIterations = 16;
  std::vector<std::vector<bool>> ok(
      kThreads, std::vector<bool>(kIterations * entries.size(), false));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kIterations; ++i) {
        for (std::size_t a = 0; a < entries.size(); ++a) {
          const Schedule schedule =
              entries[a]->make()->schedule(instance.graph, platform);
          ok[t][i * entries.size() + a] =
              test::canonical_schedule(instance.graph, schedule) ==
              reference[a];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < ok[t].size(); ++i) {
      EXPECT_TRUE(ok[t][i]) << "thread " << t << " run " << i;
    }
  }
  // The pool retains at most one workspace per concurrently active run.
  EXPECT_GE(platform.pooled_workspaces(), 1u);
  EXPECT_LE(platform.pooled_workspaces(), kThreads);
}

// Sequential reuse never grows the pool past one workspace.
TEST(PlatformContextProperty, SequentialRunsRecycleOneWorkspace) {
  const Instance instance = make_instance(7);
  const PlatformContext platform(instance.topology);
  const AlgorithmEntry* entry = find_algorithm("oihsa");
  ASSERT_NE(entry, nullptr);
  const std::unique_ptr<Scheduler> scheduler = entry->make();
  for (int i = 0; i < 5; ++i) {
    (void)scheduler->schedule(instance.graph, platform);
    EXPECT_EQ(platform.pooled_workspaces(), 1u);
  }
}

// Service-level integration: distinct DAGs over one fabric share a
// single cached platform (one miss, then hits), the counters mirror the
// cache stats, and scheduler resolution is memoised across alias and
// case variants of one registry key.
TEST(PlatformContextProperty, ServiceSharesPlatformAndMemoisesSchedulers) {
  svc::ServiceConfig config;
  config.threads = 1;
  svc::SchedulerService service(config);

  const auto topology = std::make_shared<const net::Topology>(
      make_instance(11).topology);
  for (std::uint64_t seed = 100; seed < 103; ++seed) {
    const auto graph = std::make_shared<const dag::TaskGraph>(
        make_instance(seed).graph);
    const auto schedule = service.submit(graph, topology, "ba").get();
    ASSERT_NE(schedule, nullptr);
  }

  const svc::CacheStats stats = service.platform_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(service.platform_cache().size(), 1u);
  EXPECT_EQ(
      service.metrics().counter("svc_platform_cache_misses_total").value(),
      1u);
  EXPECT_EQ(service.metrics().counter("svc_platform_cache_hits_total").value(),
            2u);

  // One shared instance per canonical key, however the name is spelt.
  EXPECT_EQ(service.scheduler_for("ba").get(),
            service.scheduler_for("BA").get());
  EXPECT_NE(service.scheduler_for("ba").get(),
            service.scheduler_for("oihsa").get());
  EXPECT_THROW((void)service.scheduler_for("no-such-algorithm"),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::sched
