// Golden equivalence: the four paper algorithms, however they are
// implemented, must emit byte-identical schedules on a pinned fig1/fig3
// workload slice. The goldens under tests/golden/ were captured from the
// pre-engine (hand-rolled loop) implementations; the policy-bundle
// engine is required to reproduce them bit for bit.
//
// Regenerate (only when the *model semantics* deliberately change):
//   EDGESCHED_UPDATE_GOLDENS=1 ./build/tests/engine_golden_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "schedule_canon.hpp"
#include "sched/ba.hpp"
#include "sched/bbsa.hpp"
#include "sched/oihsa.hpp"
#include "sched/packetized.hpp"
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"
#include "sim/workload.hpp"

namespace edgesched {
namespace {

#ifndef EDGESCHED_GOLDEN_DIR
#error "EDGESCHED_GOLDEN_DIR must point at tests/golden"
#endif

/// The pinned workload slice: small instances drawn exactly like the
/// fig1 (homogeneous) and fig3 (heterogeneous) sweeps, with the axis
/// values fixed in code so the goldens do not depend on environment
/// variables.
struct PinnedInstance {
  std::string label;
  sim::Instance instance;
};

std::vector<PinnedInstance> pinned_instances() {
  std::vector<PinnedInstance> result;
  const auto slice = [&result](bool heterogeneous, const char* fig,
                               std::initializer_list<
                                   std::pair<std::size_t, double>> axis) {
    sim::ExperimentConfig config;
    config.heterogeneous = heterogeneous;
    config.tasks_min = 30;
    config.tasks_max = 60;
    config.seed = 20060815;
    Rng root(config.seed);
    for (const auto& [procs, ccr] : axis) {
      Rng rng = root.fork();
      std::ostringstream label;
      label << fig << "_p" << procs << "_ccr" << ccr;
      result.push_back(PinnedInstance{
          label.str(), sim::make_instance(config, procs, ccr, rng)});
    }
  };
  slice(false, "fig1", {{8, 0.5}, {16, 2.0}, {8, 10.0}});
  slice(true, "fig3", {{8, 2.0}, {16, 5.0}});
  return result;
}

/// Algorithm variants under golden protection: the four registry bundles
/// plus the option paths the ablation benches exercise (tentative BA
/// selection, first-fit OIHSA, BFS routing, eager shipping, append
/// placement) so every policy seam is pinned.
struct Variant {
  std::string label;
  std::unique_ptr<sched::Scheduler> scheduler;
};

std::vector<Variant> variants() {
  using sched::BaProcessorSelection;
  std::vector<Variant> v;
  v.push_back({"ba", std::make_unique<sched::BasicAlgorithm>()});
  {
    sched::BasicAlgorithm::Options tentative;
    tentative.selection = BaProcessorSelection::kTentativeEft;
    v.push_back({"ba_tentative",
                 std::make_unique<sched::BasicAlgorithm>(tentative)});
  }
  {
    sched::BasicAlgorithm::Options append;
    append.task_insertion = false;
    append.eager_communication = true;
    v.push_back({"ba_append_eager",
                 std::make_unique<sched::BasicAlgorithm>(append)});
  }
  v.push_back({"oihsa", std::make_unique<sched::Oihsa>()});
  {
    sched::Oihsa::Options firstfit;
    firstfit.optimal_insertion = false;
    v.push_back({"oihsa_firstfit",
                 std::make_unique<sched::Oihsa>(firstfit)});
  }
  {
    sched::Oihsa::Options bfs;
    bfs.modified_routing = false;
    bfs.edge_priority_by_cost = false;
    v.push_back({"oihsa_bfs_predorder",
                 std::make_unique<sched::Oihsa>(bfs)});
  }
  {
    sched::Oihsa::Options aware;
    aware.insertion_aware_estimate = true;
    aware.eager_communication = true;
    v.push_back({"oihsa_aware_eager",
                 std::make_unique<sched::Oihsa>(aware)});
  }
  v.push_back({"bbsa", std::make_unique<sched::Bbsa>()});
  {
    sched::Bbsa::Options bfs;
    bfs.modified_routing = false;
    v.push_back({"bbsa_bfs", std::make_unique<sched::Bbsa>(bfs)});
  }
  v.push_back({"packet_ba", std::make_unique<sched::PacketizedBa>()});
  {
    sched::PacketizedBa::Options small;
    small.packet_size = 100.0;
    v.push_back({"packet_ba_100",
                 std::make_unique<sched::PacketizedBa>(small)});
  }
  return v;
}

std::string golden_path(const std::string& variant) {
  return std::string(EDGESCHED_GOLDEN_DIR) + "/" + variant + ".txt";
}

TEST(EngineGolden, ByteIdenticalToPreRefactorSchedules) {
  const bool update = std::getenv("EDGESCHED_UPDATE_GOLDENS") != nullptr;
  const std::vector<PinnedInstance> instances = pinned_instances();
  for (const Variant& variant : variants()) {
    std::ostringstream actual;
    for (const PinnedInstance& pinned : instances) {
      const sched::Schedule schedule = variant.scheduler->schedule(
          pinned.instance.graph, pinned.instance.topology);
      sched::validate_or_throw(pinned.instance.graph,
                               pinned.instance.topology, schedule);
      actual << "# " << pinned.label << "\n"
             << test::canonical_schedule(pinned.instance.graph, schedule);
    }
    const std::string path = golden_path(variant.label);
    if (update) {
      std::ofstream out(path);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << actual.str();
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden " << path
                    << " (run with EDGESCHED_UPDATE_GOLDENS=1)";
    std::ostringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual.str(), expected.str())
        << variant.label
        << ": schedule diverged from the pre-refactor golden";
  }
}

}  // namespace
}  // namespace edgesched
