#include "sched/packetized.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/ba.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

net::Topology star(std::size_t procs) {
  Rng rng(1);
  return net::switched_star(procs, net::SpeedConfig{}, rng);
}

TEST(PacketizedBa, SingleProcessorSerialises) {
  const net::Topology topo = star(1);
  const dag::TaskGraph graph = dag::fork_join(3, 2.0, 5.0);
  const Schedule s = PacketizedBa{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(PacketizedBa, SplitsBigMessages) {
  // One forced remote edge of cost 20 with packet size 5 -> 4 packets.
  const dag::TaskGraph graph = dag::fork(2, 30.0, 20.0);
  const net::Topology topo = star(2);
  PacketizedBa::Options options;
  options.packet_size = 5.0;
  const Schedule s = PacketizedBa(options).schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  bool saw_packets = false;
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = s.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kPacketized) {
      saw_packets = true;
      EXPECT_EQ(comm.packet_count, 4u);
      EXPECT_EQ(comm.occupations.size(), 4u * comm.route.size());
    }
  }
  EXPECT_TRUE(saw_packets);
}

TEST(PacketizedBa, PacketsPipelineAcrossHops) {
  // Two hops, one remote message: with store-and-forward circuit
  // switching the transfer takes 2·c/s; with small packets it pipelines
  // towards c/s + packet time.
  dag::TaskGraph graph;
  // x (highest bottom level) claims the fast processor; a then runs on
  // the slow one and its edge to b crosses the network.
  const dag::TaskId x = graph.add_task(100.0, "x");
  const dag::TaskId a = graph.add_task(1.0, "a");
  const dag::TaskId b = graph.add_task(50.0, "b");
  (void)x;
  const dag::EdgeId a_b = graph.add_edge(a, b, 16.0);

  net::Topology topo;
  const net::NodeId p0 = topo.add_processor(1.0);
  const net::NodeId p1 = topo.add_processor(10.0);  // b must move here
  const net::NodeId sw = topo.add_switch();
  topo.add_duplex_link(p0, sw, 1.0);
  topo.add_duplex_link(sw, p1, 1.0);

  PacketizedBa::Options coarse;
  coarse.packet_size = 16.0;  // single packet = store-and-forward circuit
  PacketizedBa::Options fine;
  fine.packet_size = 2.0;  // 8 packets pipeline

  const Schedule s_coarse =
      PacketizedBa(coarse).schedule(graph, topo);
  const Schedule s_fine = PacketizedBa(fine).schedule(graph, topo);
  validate_or_throw(graph, topo, s_coarse);
  validate_or_throw(graph, topo, s_fine);
  ASSERT_EQ(s_coarse.task(a).processor, p0);
  ASSERT_EQ(s_coarse.task(b).processor, p1);
  ASSERT_EQ(s_fine.task(b).processor, p1);
  // Coarse: ships at t=1, 16 units per hop store-and-forward:
  // 1 + 16 + 16 = 33. Fine: last of 8 2-unit packets leaves hop 1 at 17
  // and crosses hop 2 by 19.
  EXPECT_NEAR(s_coarse.communication(a_b).arrival, 33.0, 1e-9);
  EXPECT_NEAR(s_fine.communication(a_b).arrival, 19.0, 1e-9);
  EXPECT_LT(s_fine.makespan(), s_coarse.makespan());
}

TEST(PacketizedBa, ValidOnRandomInstances) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    Rng rng(seed);
    dag::LayeredDagParams params;
    params.num_tasks = 30;
    dag::TaskGraph graph = dag::random_layered(params, rng);
    dag::rescale_to_ccr(graph, 3.0);
    net::RandomWanParams wan;
    wan.num_processors = 6;
    const net::Topology topo = net::random_wan(wan, rng);
    for (double packet_size : {50.0, 250.0, 1e9}) {
      PacketizedBa::Options options;
      options.packet_size = packet_size;
      const Schedule s = PacketizedBa(options).schedule(graph, topo);
      validate_or_throw(graph, topo, s);
    }
  }
}

TEST(PacketizedBa, DeterministicAcrossRuns) {
  Rng rng(7);
  dag::LayeredDagParams params;
  params.num_tasks = 25;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 5;
  const net::Topology topo = net::random_wan(wan, rng);
  const Schedule a = PacketizedBa{}.schedule(graph, topo);
  const Schedule b = PacketizedBa{}.schedule(graph, topo);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
}

TEST(PacketizedBa, RejectsBadPacketSize) {
  PacketizedBa::Options options;
  options.packet_size = 0.0;
  EXPECT_THROW(PacketizedBa{options}, std::invalid_argument);
}

TEST(PacketizedBa, HugePacketSizeMatchesSaFCircuit) {
  // A single packet per edge equals store-and-forward circuit switching:
  // still a valid schedule, one occupation per hop.
  const dag::TaskGraph graph = dag::fork(2, 30.0, 10.0);
  const net::Topology topo = star(2);
  PacketizedBa::Options options;
  options.packet_size = 1e12;
  const Schedule s = PacketizedBa(options).schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = s.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kPacketized) {
      EXPECT_EQ(comm.packet_count, 1u);
    }
  }
}

}  // namespace
}  // namespace edgesched::sched
