#include "obs/decision_log.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dag/generators.hpp"
#include "exec/executor.hpp"
#include "net/builders.hpp"
#include "obs/json.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace edgesched::obs {
namespace {

TaskDecision sample_task() {
  TaskDecision decision;
  decision.algorithm = "OIHSA";
  decision.task = 3;
  decision.chosen_processor = 1;
  decision.chosen_estimate = 9.0;
  decision.candidates.push_back(ProcessorCandidate{0, 8.0, 9.5});
  decision.candidates.push_back(ProcessorCandidate{1, 8.0, 9.0});
  return decision;
}

EdgeDecision sample_edge() {
  EdgeDecision decision;
  decision.algorithm = "OIHSA";
  decision.edge = 4;
  decision.src_task = 1;
  decision.dst_task = 3;
  decision.local = false;
  decision.ship_time = 5.0;
  decision.arrival = 9.0;
  decision.hops.push_back(EdgeHop{0, 5.0, 9.0});
  return decision;
}

InsertionDecision sample_insertion() {
  InsertionDecision decision;
  decision.edge = 4;
  decision.link = 0;
  decision.deferral = true;
  decision.shifts = 2;
  decision.slack_consumed = 1.5;
  decision.start = 3.0;
  decision.finish = 5.0;
  return decision;
}

std::vector<JsonValue> parse_lines(const std::string& jsonl) {
  std::vector<JsonValue> docs;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      docs.push_back(JsonValue::parse(line));
    }
  }
  return docs;
}

TEST(DecisionLog, StoresAndSnapshotsAllThreeKinds) {
  DecisionLog log;
  log.record(sample_task());
  log.record(sample_edge());
  log.record(sample_insertion());

  EXPECT_EQ(log.size(), 3u);
  ASSERT_EQ(log.task_decisions().size(), 1u);
  ASSERT_EQ(log.edge_decisions().size(), 1u);
  ASSERT_EQ(log.insertion_decisions().size(), 1u);

  const TaskDecision task = log.task_decisions().front();
  EXPECT_EQ(task.algorithm, "OIHSA");
  EXPECT_EQ(task.chosen_processor, 1u);
  ASSERT_EQ(task.candidates.size(), 2u);
  EXPECT_DOUBLE_EQ(task.candidates[0].estimate, 9.5);

  const EdgeDecision edge = log.edge_decisions().front();
  EXPECT_FALSE(edge.local);
  ASSERT_EQ(edge.hops.size(), 1u);
  EXPECT_DOUBLE_EQ(edge.hops[0].finish, 9.0);

  const InsertionDecision insertion = log.insertion_decisions().front();
  EXPECT_TRUE(insertion.deferral);
  EXPECT_DOUBLE_EQ(insertion.slack_consumed, 1.5);
}

TEST(DecisionLog, JsonlSchemaCarriesEveryField) {
  DecisionLog log;
  log.record(sample_task());
  log.record(sample_edge());
  log.record(sample_insertion());

  std::ostringstream out;
  log.write_jsonl(out);
  const std::vector<JsonValue> docs = parse_lines(out.str());
  ASSERT_EQ(docs.size(), 3u);

  const JsonValue& task = docs[0];
  EXPECT_EQ(task.at("type").as_string(), "task");
  EXPECT_EQ(task.at("algorithm").as_string(), "OIHSA");
  EXPECT_EQ(task.at("task").as_number(), 3.0);
  EXPECT_EQ(task.at("chosen_processor").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(task.at("chosen_estimate").as_number(), 9.0);
  ASSERT_EQ(task.at("candidates").size(), 2u);
  const JsonValue& candidate = task.at("candidates").at(1);
  EXPECT_EQ(candidate.at("processor").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(candidate.at("ready_estimate").as_number(), 8.0);
  EXPECT_DOUBLE_EQ(candidate.at("estimate").as_number(), 9.0);

  const JsonValue& edge = docs[1];
  EXPECT_EQ(edge.at("type").as_string(), "edge");
  EXPECT_EQ(edge.at("edge").as_number(), 4.0);
  EXPECT_EQ(edge.at("src_task").as_number(), 1.0);
  EXPECT_EQ(edge.at("dst_task").as_number(), 3.0);
  EXPECT_FALSE(edge.at("local").as_bool());
  EXPECT_DOUBLE_EQ(edge.at("ship_time").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(edge.at("arrival").as_number(), 9.0);
  ASSERT_EQ(edge.at("hops").size(), 1u);
  EXPECT_EQ(edge.at("hops").at(0).at("link").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(edge.at("hops").at(0).at("start").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(edge.at("hops").at(0).at("finish").as_number(), 9.0);

  const JsonValue& insertion = docs[2];
  EXPECT_EQ(insertion.at("type").as_string(), "insertion");
  EXPECT_EQ(insertion.at("outcome").as_string(), "deferral");
  EXPECT_EQ(insertion.at("shifts").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(insertion.at("slack_consumed").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(insertion.at("start").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(insertion.at("finish").as_number(), 5.0);
}

TEST(DecisionLog, FirstFitInsertionSaysFirstFit) {
  DecisionLog log;
  InsertionDecision decision = sample_insertion();
  decision.deferral = false;
  decision.shifts = 0;
  decision.slack_consumed = 0.0;
  log.record(decision);

  std::ostringstream out;
  log.write_jsonl(out);
  const std::vector<JsonValue> docs = parse_lines(out.str());
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].at("outcome").as_string(), "first_fit");
  EXPECT_EQ(docs[0].at("shifts").as_number(), 0.0);
}

TEST(DecisionLog, PreservesRecordingOrderAcrossKinds) {
  DecisionLog log;
  log.record(sample_insertion());  // insertion lands before its edge,
  log.record(sample_edge());       // exactly as the schedulers emit them
  log.record(sample_task());

  std::ostringstream out;
  log.write_jsonl(out);
  const std::vector<JsonValue> docs = parse_lines(out.str());
  ASSERT_EQ(docs.size(), 3u);
  EXPECT_EQ(docs[0].at("type").as_string(), "insertion");
  EXPECT_EQ(docs[1].at("type").as_string(), "edge");
  EXPECT_EQ(docs[2].at("type").as_string(), "task");
}

TEST(DecisionLog, StreamingSinkWritesInsteadOfStoring) {
  std::ostringstream sink;
  DecisionLog log(sink);
  log.record(sample_task());
  log.record(sample_edge());

  // Streamed immediately, nothing retained.
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.task_decisions().empty());
  EXPECT_TRUE(log.edge_decisions().empty());
  const std::vector<JsonValue> docs = parse_lines(sink.str());
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].at("type").as_string(), "task");
  EXPECT_EQ(docs[1].at("type").as_string(), "edge");

  // write_jsonl has nothing to replay in streaming mode.
  std::ostringstream replay;
  log.write_jsonl(replay);
  EXPECT_TRUE(replay.str().empty());
}

TEST(DecisionLog, RecoveryRecordsRoundTripThroughJsonl) {
  RecoveryDecision decision;
  decision.policy = "reschedule";
  decision.action = "reschedule";
  decision.fault_kind = "processor";
  decision.fault_target = 2;
  decision.permanent = true;
  decision.time = 41.5;
  decision.algorithm = "OIHSA";
  decision.tasks_remaining = 7;
  decision.replan_makespan = 88.25;

  DecisionLog log;
  log.record(decision);
  ASSERT_EQ(log.recovery_decisions().size(), 1u);
  EXPECT_EQ(log.recovery_decisions()[0].action, "reschedule");
  EXPECT_EQ(log.size(), 1u);

  std::ostringstream os;
  log.write_jsonl(os);
  const std::vector<JsonValue> docs = parse_lines(os.str());
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].at("type").as_string(), "recovery");
  EXPECT_EQ(docs[0].at("policy").as_string(), "reschedule");
  EXPECT_EQ(docs[0].at("fault_kind").as_string(), "processor");
  EXPECT_EQ(docs[0].at("fault_target").as_number(), 2.0);
  EXPECT_TRUE(docs[0].at("permanent").as_bool());
  EXPECT_EQ(docs[0].at("time").as_number(), 41.5);
  EXPECT_EQ(docs[0].at("algorithm").as_string(), "OIHSA");
  EXPECT_EQ(docs[0].at("tasks_remaining").as_number(), 7.0);
  EXPECT_EQ(docs[0].at("replan_makespan").as_number(), 88.25);
}

TEST(DecisionLog, ExecutorLogsRecoveryDecisionsWhenInstalled) {
  // End-to-end: a rescheduling execution records its replan decision in
  // the active log.
  Rng rng(9);
  dag::LayeredDagParams params;
  params.num_tasks = 14;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const sched::Schedule schedule =
      sched::make_scheduler("oihsa")->schedule(graph, topo);
  exec::ExecutionOptions options;
  options.policy = exec::RecoveryPolicy::kReschedule;
  options.faults.fail_processor(schedule.makespan() * 0.4,
                                topo.processors().front(), true);

  DecisionLog log;
  {
    ScopedDecisionLog scoped(log);
    const exec::ExecutionReport report =
        exec::execute(graph, topo, schedule, options);
    ASSERT_TRUE(report.completed) << report.failure;
    ASSERT_GE(report.reschedules, 1u);
  }
  const std::vector<RecoveryDecision> recoveries = log.recovery_decisions();
  ASSERT_GE(recoveries.size(), 1u);
  const RecoveryDecision& logged = recoveries.front();
  EXPECT_EQ(logged.policy, "reschedule");
  EXPECT_EQ(logged.action, "reschedule");
  EXPECT_EQ(logged.fault_kind, "processor");
  EXPECT_TRUE(logged.permanent);
  EXPECT_GT(logged.replan_makespan, 0.0);
}

TEST(DecisionLog, ScopedInstallNestsAndRestores) {
  ASSERT_EQ(active_decision_log(), nullptr);
  DecisionLog outer;
  {
    ScopedDecisionLog scoped_outer(outer);
    EXPECT_EQ(active_decision_log(), &outer);
    EXPECT_EQ(DecisionLog::active(), &outer);
    {
      DecisionLog inner;
      ScopedDecisionLog scoped_inner(inner);
      EXPECT_EQ(active_decision_log(), &inner);
    }
    EXPECT_EQ(active_decision_log(), &outer);
  }
  EXPECT_EQ(active_decision_log(), nullptr);
}

}  // namespace
}  // namespace edgesched::obs
