// Policy-matrix fuzz suite: every engine-backed registry bundle plus
// novel policy combinations (never shipped as named algorithms) over a
// few hundred random instances. Each schedule must pass the independent
// validator, and a replay from the same seed — fresh instance, fresh
// scheduler — must reproduce the schedule byte for byte (canonical form,
// doubles as bit patterns).
//
// Two bundles double as semantic probes: OIHSA with the probe-route memo
// disabled must stay byte-identical to stock OIHSA (the memo is a pure
// fast path), which would catch a stale-generation bug in
// net::ProbedRouteCache on every instance of the sweep.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/algorithm_spec.hpp"
#include "sched/engine.hpp"
#include "sched/registry.hpp"
#include "sched/validator.hpp"
#include "schedule_canon.hpp"

namespace edgesched::sched {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topology;
};

// Everything about the instance — size, shape, CCR, topology family —
// is drawn from the one Rng(seed), so the seed alone replays it.
Instance make_instance(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = static_cast<std::size_t>(rng.uniform_int(10, 30));
  dag::TaskGraph graph = dag::random_layered(params, rng);
  const double ccrs[] = {0.5, 2.0, 5.0, 10.0};
  dag::rescale_to_ccr(graph, ccrs[rng.uniform_int(0, 3)]);

  net::SpeedConfig speeds;
  speeds.heterogeneous = (seed % 3 == 0);
  net::Topology topology = [&]() -> net::Topology {
    switch (rng.uniform_int(0, 4)) {
      case 0: return net::fully_connected(4, speeds, rng);
      case 1: return net::switched_star(5, speeds, rng);
      case 2: return net::ring(5, speeds, rng);
      case 3: return net::bus(4, speeds, rng);
      default: {
        net::RandomWanParams wan;
        wan.num_processors = 8;
        wan.speeds = speeds;
        return net::random_wan(wan, rng);
      }
    }
  }();
  return Instance{std::move(graph), std::move(topology)};
}

AlgorithmSpec registry_spec(const char* key) {
  const AlgorithmEntry* entry = find_algorithm(key);
  if (entry == nullptr || !entry->engine_backed()) {
    throw std::logic_error(std::string("registry bundle missing: ") + key);
  }
  return entry->spec();
}

// Novel combinations: consistent per AlgorithmSpec::validate, but not
// any named algorithm's bundle. Each exercises a policy pairing the
// seed implementations never did.
std::vector<AlgorithmSpec> novel_specs() {
  std::vector<AlgorithmSpec> specs;

  // BA's loop with OIHSA's contention-probing router.
  AlgorithmSpec ba_probe;
  ba_probe.name = "BA-PROBE";
  ba_probe.selection = SelectionPolicyKind::kBlindEft;
  ba_probe.routing = RoutingPolicyKind::kProbeDijkstra;
  specs.push_back(ba_probe);

  // Tentative (schedule-and-roll-back) EFT with cost-ordered edges.
  AlgorithmSpec tent_cost;
  tent_cost.name = "TENT-COST";
  tent_cost.selection = SelectionPolicyKind::kTentativeEft;
  tent_cost.edge_order = EdgeOrderPolicyKind::kByCostDescending;
  specs.push_back(tent_cost);

  // OIHSA's selection and routing over store-and-forward packets.
  AlgorithmSpec mls_packet;
  mls_packet.name = "MLS-PACKET";
  mls_packet.selection = SelectionPolicyKind::kMlsEstimate;
  mls_packet.insertion_aware_estimate = true;
  mls_packet.edge_order = EdgeOrderPolicyKind::kByCostDescending;
  mls_packet.routing = RoutingPolicyKind::kProbeDijkstra;
  mls_packet.insertion = InsertionPolicyKind::kPacketized;
  mls_packet.packet_size = 100.0;
  specs.push_back(mls_packet);

  // Fluid bandwidth sharing with BA's BFS routes and eager shipping.
  AlgorithmSpec fluid_bfs;
  fluid_bfs.name = "FLUID-BFS";
  fluid_bfs.selection = SelectionPolicyKind::kMlsEstimate;
  fluid_bfs.insertion = InsertionPolicyKind::kFluidBandwidth;
  fluid_bfs.eager_communication = true;
  specs.push_back(fluid_bfs);

  // Stock OIHSA minus the route memo — must be a byte-identical no-op
  // (asserted against the registry bundle below, hence the same name).
  AlgorithmSpec no_memo = registry_spec("oihsa");
  no_memo.route_memo = false;
  specs.push_back(no_memo);

  // Stock BBSA plus the route memo: generation-keyed invalidation must
  // make memoisation a byte-identical no-op on the bandwidth model too
  // (the preset leaves it off purely because it can never hit there).
  AlgorithmSpec bbsa_memo = registry_spec("bbsa");
  bbsa_memo.route_memo = true;
  specs.push_back(bbsa_memo);

  return specs;
}

TEST(PolicyMatrix, FuzzValidatesAndReplaysByteIdentical) {
  std::vector<std::pair<std::string, AlgorithmSpec>> bundles;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    if (entry.engine_backed()) {
      bundles.emplace_back(entry.key, entry.spec());
    }
  }
  ASSERT_GE(bundles.size(), 4u);
  for (const AlgorithmSpec& spec : novel_specs()) {
    bundles.emplace_back("novel:" + spec.name, spec);
  }
  ASSERT_GE(bundles.size(), 8u);

  constexpr std::uint64_t kInstances = 200;
  for (std::uint64_t seed = 1; seed <= kInstances; ++seed) {
    const Instance instance = make_instance(seed);
    std::string oihsa_bytes;
    std::string bbsa_bytes;
    for (const auto& [label, spec] : bundles) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " bundle=" + label);
      const SpecScheduler scheduler(spec);
      const Schedule s =
          scheduler.schedule(instance.graph, instance.topology);
      const auto violations =
          validate(instance.graph, instance.topology, s);
      ASSERT_TRUE(violations.empty())
          << (violations.empty() ? "" : violations.front());
      const std::string bytes =
          test::canonical_schedule(instance.graph, s);

      // Deterministic replay: same seed, fresh instance and scheduler.
      const Instance again = make_instance(seed);
      const std::string replay = test::canonical_schedule(
          again.graph, SpecScheduler(spec).schedule(again.graph,
                                                    again.topology));
      ASSERT_EQ(bytes, replay);

      // The memo-toggled twins share their registry bundle's name on
      // purpose: their canonical forms must match the stock bundles
      // exactly (the route memo is a pure fast path either way).
      if (label == "oihsa") {
        oihsa_bytes = bytes;
      } else if (label == "novel:OIHSA") {
        ASSERT_EQ(bytes, oihsa_bytes);
      } else if (label == "bbsa") {
        bbsa_bytes = bytes;
      } else if (label == "novel:BBSA") {
        ASSERT_EQ(bytes, bbsa_bytes);
      }
    }
  }
}

// Distinct specs — even same-named ones — must fingerprint apart, and a
// spec must fingerprint identically across processes (the service cache
// persists keys only per process, but stability is what makes hits
// meaningful across graph/topology reloads).
TEST(PolicyMatrix, FingerprintsAreDistinct) {
  std::vector<std::uint64_t> prints;
  for (const AlgorithmEntry& entry : algorithm_registry()) {
    if (entry.engine_backed()) {
      prints.push_back(entry.spec().fingerprint());
    }
  }
  for (const AlgorithmSpec& spec : novel_specs()) {
    prints.push_back(spec.fingerprint());
  }
  for (std::size_t i = 0; i < prints.size(); ++i) {
    for (std::size_t j = i + 1; j < prints.size(); ++j) {
      EXPECT_NE(prints[i], prints[j]) << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace edgesched::sched
