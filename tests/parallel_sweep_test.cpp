// Determinism of the parallelised sweep runner: for any thread count the
// SweepPoint statistics must be *exactly* (bit-for-bit) those of the
// serial run — the acceptance contract of the service-layer rewrite.
#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <vector>

#include "sim/runner.hpp"
#include "sim/workload.hpp"

namespace edgesched::sim {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config = ExperimentConfig::defaults(false);
  config.ccr_values = {0.5, 2.0, 5.0};
  config.processor_counts = {2, 4};
  config.tasks_min = 12;
  config.tasks_max = 20;
  config.repetitions = 2;
  return config;
}

void expect_identical(const std::vector<SweepPoint>& serial,
                      const std::vector<SweepPoint>& parallel) {
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].x, parallel[i].x);
    for (const auto& [s, p] :
         {std::pair{&serial[i].oihsa_improvement_pct,
                    &parallel[i].oihsa_improvement_pct},
          std::pair{&serial[i].bbsa_improvement_pct,
                    &parallel[i].bbsa_improvement_pct},
          std::pair{&serial[i].ba_makespan, &parallel[i].ba_makespan}}) {
      EXPECT_EQ(s->count(), p->count());
      // EXPECT_EQ on doubles is exact equality: byte-identical stats.
      EXPECT_EQ(s->mean(), p->mean());
      EXPECT_EQ(s->variance(), p->variance());
      EXPECT_EQ(s->min(), p->min());
      EXPECT_EQ(s->max(), p->max());
    }
  }
}

TEST(ParallelSweep, CcrSweepMatchesSerialExactly) {
  const auto serial = sweep_ccr(tiny_config(), false, {}, /*threads=*/1);
  const auto parallel = sweep_ccr(tiny_config(), false, {}, /*threads=*/4);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, ProcessorSweepMatchesSerialExactly) {
  const auto serial =
      sweep_processors(tiny_config(), false, {}, /*threads=*/1);
  const auto parallel =
      sweep_processors(tiny_config(), false, {}, /*threads=*/3);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, TaskCountSweepMatchesSerialExactly) {
  ExperimentConfig config = tiny_config();
  config.ccr_values = {1.0};
  const std::vector<std::size_t> task_counts = {10, 16};
  const auto serial =
      sweep_task_counts(config, task_counts, false, {}, /*threads=*/1);
  const auto parallel =
      sweep_task_counts(config, task_counts, false, {}, /*threads=*/4);
  expect_identical(serial, parallel);
}

TEST(ParallelSweep, ValidatedParallelSweepSucceeds) {
  ExperimentConfig config = tiny_config();
  config.ccr_values = {1.0};
  config.repetitions = 1;
  const auto points =
      sweep_ccr(config, /*validate_schedules=*/true, {}, /*threads=*/4);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].oihsa_improvement_pct.count(), 2u);
}

TEST(ParallelSweep, ProgressIsSerialisedMonotonicAndComplete) {
  const ExperimentConfig config = tiny_config();
  const std::size_t expected_total =
      config.ccr_values.size() * config.processor_counts.size() *
      config.repetitions;
  std::mutex seen_mutex;  // the runner serialises calls; taking the lock
                          // here must therefore never contend with itself
  std::vector<std::size_t> seen;
  const auto points = sweep_ccr(
      config, false,
      [&](std::size_t done, std::size_t total) {
        const std::lock_guard<std::mutex> lock(seen_mutex);
        EXPECT_EQ(total, expected_total);
        seen.push_back(done);
      },
      /*threads=*/4);
  ASSERT_EQ(points.size(), config.ccr_values.size());
  ASSERT_EQ(seen.size(), expected_total);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);  // strictly increasing 1..total
  }
}

TEST(ParallelSweep, DefaultThreadsRespectsEnvironment) {
  EXPECT_GE(default_sweep_threads(), 1u);
}

}  // namespace
}  // namespace edgesched::sim
