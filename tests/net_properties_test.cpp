#include "net/properties.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "net/builders.hpp"

namespace edgesched::net {
namespace {

TEST(HopDistances, LinearChainOfSwitches) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  const NodeId b = t.add_processor();
  t.add_duplex_link(a, s1);
  t.add_duplex_link(s1, s2);
  t.add_duplex_link(s2, b);
  const auto distance = hop_distances(t, a);
  EXPECT_EQ(distance[a.index()], 0u);
  EXPECT_EQ(distance[s1.index()], 1u);
  EXPECT_EQ(distance[s2.index()], 2u);
  EXPECT_EQ(distance[b.index()], 3u);
}

TEST(HopDistances, UnreachableIsMax) {
  Topology t;
  const NodeId a = t.add_processor();
  (void)t.add_processor();
  const auto distance = hop_distances(t, a);
  EXPECT_EQ(distance[1], std::numeric_limits<std::size_t>::max());
}

TEST(Analyze, FullyConnectedHasDiameterOne) {
  Rng rng(1);
  const Topology t = fully_connected(5, SpeedConfig{}, rng);
  const TopologyStats stats = analyze(t);
  EXPECT_EQ(stats.num_processors, 5u);
  EXPECT_EQ(stats.num_switches, 0u);
  EXPECT_EQ(stats.diameter, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_processor_distance, 1.0);
  EXPECT_DOUBLE_EQ(stats.mean_link_speed, 1.0);
  EXPECT_DOUBLE_EQ(stats.min_link_speed, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_link_speed, 1.0);
}

TEST(Analyze, StarHasDiameterTwo) {
  Rng rng(1);
  const Topology t = switched_star(6, SpeedConfig{}, rng);
  const TopologyStats stats = analyze(t);
  EXPECT_EQ(stats.num_switches, 1u);
  EXPECT_EQ(stats.diameter, 2u);
  EXPECT_DOUBLE_EQ(stats.mean_processor_distance, 2.0);
}

TEST(Analyze, RingDiameterIsHalf) {
  Rng rng(1);
  const Topology t = ring(8, SpeedConfig{}, rng);
  EXPECT_EQ(analyze(t).diameter, 4u);
}

TEST(Analyze, HypercubeDiameterIsDimension) {
  Rng rng(1);
  const Topology t = hypercube(4, SpeedConfig{}, rng);
  EXPECT_EQ(analyze(t).diameter, 4u);
}

TEST(Analyze, HeterogeneousSpeedRange) {
  Rng rng(5);
  SpeedConfig speeds;
  speeds.heterogeneous = true;
  const Topology t = fully_connected(8, speeds, rng);
  const TopologyStats stats = analyze(t);
  EXPECT_GE(stats.min_link_speed, 1.0);
  EXPECT_LE(stats.max_link_speed, 10.0);
  EXPECT_GE(stats.mean_link_speed, stats.min_link_speed);
  EXPECT_LE(stats.mean_link_speed, stats.max_link_speed);
}

TEST(Analyze, ThrowsOnDisconnectedProcessors) {
  Topology t;
  (void)t.add_processor();
  (void)t.add_processor();
  EXPECT_THROW((void)analyze(t), std::invalid_argument);
}

TEST(Analyze, RandomWanStaysCompact) {
  Rng rng(11);
  RandomWanParams params;
  params.num_processors = 64;
  const Topology t = random_wan(params, rng);
  const TopologyStats stats = analyze(t);
  // proc -> switch -> ... -> switch -> proc; the random extra links keep
  // the switch graph shallow.
  EXPECT_GE(stats.diameter, 2u);
  EXPECT_LE(stats.diameter, 12u);
  EXPECT_EQ(stats.num_processors, 64u);
}

}  // namespace
}  // namespace edgesched::net
