#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace edgesched::net {
namespace {

TEST(Topology, AddProcessorAndSwitch) {
  Topology t;
  const NodeId p = t.add_processor(2.0, "cpu");
  const NodeId s = t.add_switch();
  EXPECT_TRUE(t.is_processor(p));
  EXPECT_FALSE(t.is_processor(s));
  EXPECT_DOUBLE_EQ(t.processor_speed(p), 2.0);
  EXPECT_THROW((void)t.processor_speed(s), std::invalid_argument);
  EXPECT_EQ(t.num_processors(), 1u);
  EXPECT_EQ(t.node(p).name, "cpu");
  EXPECT_EQ(t.node(s).name, "S1");
}

TEST(Topology, RejectsBadInputs) {
  Topology t;
  const NodeId p = t.add_processor();
  EXPECT_THROW((void)t.add_processor(0.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_link(p, p, 1.0), std::invalid_argument);
  EXPECT_THROW((void)t.add_link(p, NodeId(7u), 1.0), std::invalid_argument);
  const NodeId q = t.add_processor();
  EXPECT_THROW((void)t.add_link(p, q, 0.0), std::invalid_argument);
}

TEST(Topology, DirectedLinkHasOwnDomain) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const LinkId ab = t.add_link(a, b, 3.0);
  const LinkId ba = t.add_link(b, a, 3.0);
  EXPECT_NE(t.domain(ab), t.domain(ba));
  EXPECT_DOUBLE_EQ(t.link_speed(ab), 3.0);
  EXPECT_EQ(t.link(ab).src, a);
  EXPECT_EQ(t.link(ab).dst, b);
  EXPECT_EQ(t.num_domains(), 2u);
}

TEST(Topology, DuplexLinkUsesTwoDomains) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const auto [ab, ba] = t.add_duplex_link(a, b);
  EXPECT_NE(t.domain(ab), t.domain(ba));
}

TEST(Topology, HalfDuplexSharesOneDomain) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const auto [ab, ba] = t.add_half_duplex_link(a, b);
  EXPECT_EQ(t.domain(ab), t.domain(ba));
  EXPECT_EQ(t.num_domains(), 1u);
}

TEST(Topology, BusConnectsAllOrderedPairs) {
  Topology t;
  std::vector<NodeId> members{t.add_processor(), t.add_processor(),
                              t.add_processor()};
  const DomainId bus = t.add_bus(members, 4.0);
  EXPECT_EQ(t.num_links(), 6u);  // 3 * 2 ordered pairs
  for (LinkId l : t.all_links()) {
    EXPECT_EQ(t.domain(l), bus);
    EXPECT_DOUBLE_EQ(t.link_speed(l), 4.0);
  }
  EXPECT_EQ(t.num_domains(), 1u);
  EXPECT_THROW((void)t.add_bus({members[0]}, 1.0), std::invalid_argument);
}

TEST(Topology, AdjacencyListsAreConsistent) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const NodeId c = t.add_processor();
  const LinkId ab = t.add_link(a, b);
  const LinkId ac = t.add_link(a, c);
  const LinkId cb = t.add_link(c, b);
  EXPECT_EQ(t.out_links(a), (std::vector<LinkId>{ab, ac}));
  EXPECT_EQ(t.in_links(b), (std::vector<LinkId>{ab, cb}));
}

TEST(Topology, MeanLinkSpeed) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  (void)t.add_link(a, b, 2.0);
  (void)t.add_link(b, a, 4.0);
  EXPECT_DOUBLE_EQ(t.mean_link_speed(), 3.0);
  EXPECT_DOUBLE_EQ(Topology{}.mean_link_speed(), 0.0);
}

TEST(Topology, ProcessorsConnected) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  EXPECT_FALSE(t.processors_connected());
  t.add_duplex_link(a, b);
  EXPECT_TRUE(t.processors_connected());
}

TEST(Topology, ConnectivityIsDirected) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  (void)t.add_link(a, b);  // one-way only
  EXPECT_FALSE(t.processors_connected());
}

TEST(Topology, SingleProcessorTriviallyConnected) {
  Topology t;
  (void)t.add_processor();
  EXPECT_TRUE(t.processors_connected());
}

TEST(Topology, ValidateRoute) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId s = t.add_switch();
  const NodeId b = t.add_processor();
  const LinkId as = t.add_link(a, s);
  const LinkId sb = t.add_link(s, b);
  const LinkId ba = t.add_link(b, a);

  EXPECT_NO_THROW(t.validate_route({as, sb}, a, b));
  EXPECT_NO_THROW(t.validate_route({}, a, a));
  EXPECT_THROW(t.validate_route({}, a, b), std::invalid_argument);
  EXPECT_THROW(t.validate_route({as}, a, b), std::invalid_argument);
  EXPECT_THROW(t.validate_route({sb, as}, a, b), std::invalid_argument);
  EXPECT_THROW(t.validate_route({ba}, a, b), std::invalid_argument);
  EXPECT_THROW(t.validate_route({as, sb}, a, a), std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::net
