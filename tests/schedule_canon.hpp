// Canonical byte-exact schedule serialisation for equivalence tests.
//
// Every field of a Schedule — placements, communication kinds, routes,
// occupations, rate profiles, packet counts, arrivals — is rendered with
// doubles as raw IEEE-754 bit patterns, so two schedules produce the same
// text if and only if they are bit-identical. This is the currency of the
// golden-equivalence suite: the engine-backed algorithms must reproduce
// the pre-refactor implementations exactly, not merely to a tolerance.
#pragma once

#include <bit>
#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

#include "dag/task_graph.hpp"
#include "net/topology.hpp"
#include "sched/schedule.hpp"

namespace edgesched::test {

inline void canon_double(std::ostream& os, double value) {
  os << std::hex << std::setw(16) << std::setfill('0')
     << std::bit_cast<std::uint64_t>(value) << std::dec;
}

/// Bit-exact textual form of a schedule. Line-oriented so golden diffs
/// point at the first diverging task or edge.
inline std::string canonical_schedule(const dag::TaskGraph& graph,
                                      const sched::Schedule& schedule) {
  std::ostringstream os;
  os << "algorithm " << schedule.algorithm() << "\n";
  for (dag::TaskId t : graph.all_tasks()) {
    const sched::TaskPlacement& p = schedule.task(t);
    os << "task " << t.index() << " proc "
       << (p.placed() ? static_cast<std::int64_t>(p.processor.index())
                      : -1)
       << " start ";
    canon_double(os, p.start);
    os << " finish ";
    canon_double(os, p.finish);
    os << "\n";
  }
  for (dag::EdgeId e : graph.all_edges()) {
    const sched::EdgeCommunication& comm = schedule.communication(e);
    os << "edge " << e.index() << " kind "
       << static_cast<int>(comm.kind) << " arrival ";
    canon_double(os, comm.arrival);
    os << " packets " << comm.packet_count << "\n";
    os << "  route";
    for (net::LinkId l : comm.route) {
      os << ' ' << l.index();
    }
    os << "\n";
    for (const sched::LinkOccupation& occ : comm.occupations) {
      os << "  occ " << occ.link.index() << ' ';
      canon_double(os, occ.earliest_start);
      os << ' ';
      canon_double(os, occ.start);
      os << ' ';
      canon_double(os, occ.finish);
      os << "\n";
    }
    for (const timeline::RateProfile& profile : comm.profiles) {
      os << "  profile";
      for (const timeline::RateSegment& seg : profile.segments()) {
        os << " [";
        canon_double(os, seg.start);
        os << ' ';
        canon_double(os, seg.end);
        os << ' ';
        canon_double(os, seg.rate);
        os << ']';
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace edgesched::test
