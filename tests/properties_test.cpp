#include "dag/properties.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/generators.hpp"

namespace edgesched::dag {
namespace {

TaskGraph diamond_graph() {
  TaskGraph g;
  const TaskId a = g.add_task(2.0);
  const TaskId b = g.add_task(3.0);
  const TaskId c = g.add_task(4.0);
  const TaskId d = g.add_task(5.0);
  g.add_edge(a, b, 1.0);
  g.add_edge(a, c, 2.0);
  g.add_edge(b, d, 3.0);
  g.add_edge(c, d, 4.0);
  return g;
}

TEST(BottomLevels, HandComputedDiamond) {
  const TaskGraph g = diamond_graph();
  const std::vector<double> bl = bottom_levels(g);
  // bl(d) = 5; bl(c) = 4 + 4 + 5 = 13; bl(b) = 3 + 3 + 5 = 11;
  // bl(a) = 2 + max(1 + 11, 2 + 13) = 17.
  EXPECT_DOUBLE_EQ(bl[3], 5.0);
  EXPECT_DOUBLE_EQ(bl[2], 13.0);
  EXPECT_DOUBLE_EQ(bl[1], 11.0);
  EXPECT_DOUBLE_EQ(bl[0], 17.0);
}

TEST(BottomLevels, ComputationOnlyIgnoresEdges) {
  const TaskGraph g = diamond_graph();
  const std::vector<double> bl = bottom_levels_computation_only(g);
  EXPECT_DOUBLE_EQ(bl[0], 2.0 + 4.0 + 5.0);
}

TEST(TopLevels, HandComputedDiamond) {
  const TaskGraph g = diamond_graph();
  const std::vector<double> tl = top_levels(g);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 2.0 + 1.0);
  EXPECT_DOUBLE_EQ(tl[2], 2.0 + 2.0);
  // tl(d) = max(tl(b)+3+3, tl(c)+4+4) = max(9, 12) = 12.
  EXPECT_DOUBLE_EQ(tl[3], 12.0);
}

TEST(TopPlusBottom, ConstantOnCriticalPath) {
  const TaskGraph g = diamond_graph();
  const std::vector<double> bl = bottom_levels(g);
  const std::vector<double> tl = top_levels(g);
  const double cp = critical_path_length(g);
  // a and c and d are on the critical path a->c->d.
  EXPECT_DOUBLE_EQ(tl[0] + bl[0], cp);
  EXPECT_DOUBLE_EQ(tl[2] + bl[2], cp);
  EXPECT_DOUBLE_EQ(tl[3] + bl[3], cp);
  EXPECT_LT(tl[1] + bl[1], cp);
}

TEST(CriticalPath, LengthAndMembers) {
  const TaskGraph g = diamond_graph();
  EXPECT_DOUBLE_EQ(critical_path_length(g), 17.0);
  const std::vector<TaskId> path = critical_path(g);
  EXPECT_EQ(path,
            (std::vector<TaskId>{TaskId(0u), TaskId(2u), TaskId(3u)}));
}

TEST(CriticalPath, ChainIsWholeGraph) {
  const TaskGraph g = chain(5, 2.0, 3.0);
  EXPECT_DOUBLE_EQ(critical_path_length(g), 5 * 2.0 + 4 * 3.0);
  EXPECT_EQ(critical_path(g).size(), 5u);
}

TEST(CriticalPath, EmptyGraph) {
  const TaskGraph g;
  EXPECT_DOUBLE_EQ(critical_path_length(g), 0.0);
  EXPECT_TRUE(critical_path(g).empty());
}

TEST(Ccr, MatchesDefinition) {
  const TaskGraph g = diamond_graph();
  // mean comm = 10/4, mean comp = 14/4.
  EXPECT_DOUBLE_EQ(communication_computation_ratio(g), 10.0 / 14.0);
}

TEST(Ccr, ZeroWithoutEdges) {
  TaskGraph g;
  (void)g.add_task(1.0);
  EXPECT_DOUBLE_EQ(communication_computation_ratio(g), 0.0);
}

TEST(RescaleToCcr, HitsTarget) {
  TaskGraph g = diamond_graph();
  for (double target : {0.1, 1.0, 5.0, 10.0}) {
    rescale_to_ccr(g, target);
    EXPECT_NEAR(communication_computation_ratio(g), target, 1e-12);
  }
}

TEST(RescaleToCcr, PreservesRelativeCosts) {
  TaskGraph g = diamond_graph();
  rescale_to_ccr(g, 2.0);
  EXPECT_NEAR(g.cost(EdgeId(1u)) / g.cost(EdgeId(0u)), 2.0, 1e-12);
}

TEST(RescaleToCcr, RejectsBadInput) {
  TaskGraph g = diamond_graph();
  EXPECT_THROW(rescale_to_ccr(g, 0.0), std::invalid_argument);
  TaskGraph edgeless;
  (void)edgeless.add_task(1.0);
  EXPECT_THROW(rescale_to_ccr(edgeless, 1.0), std::invalid_argument);
}

TEST(PrecedenceLevels, Diamond) {
  const TaskGraph g = diamond_graph();
  const std::vector<std::size_t> levels = precedence_levels(g);
  EXPECT_EQ(levels, (std::vector<std::size_t>{0, 1, 1, 2}));
}

TEST(Shape, Diamond) {
  const GraphShape s = shape(diamond_graph());
  EXPECT_EQ(s.num_tasks, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_EQ(s.num_entries, 1u);
  EXPECT_EQ(s.num_exits, 1u);
  EXPECT_DOUBLE_EQ(s.avg_out_degree, 1.0);
}

TEST(Shape, EmptyGraph) {
  const GraphShape s = shape(TaskGraph{});
  EXPECT_EQ(s.num_tasks, 0u);
  EXPECT_EQ(s.depth, 0u);
}

TEST(BottomLevels, MaxEqualsTopLevelPlusWeightAtExits) {
  const TaskGraph g = diamond_graph();
  const std::vector<double> bl = bottom_levels(g);
  const double cp = *std::max_element(bl.begin(), bl.end());
  EXPECT_DOUBLE_EQ(cp, critical_path_length(g));
}

}  // namespace
}  // namespace edgesched::dag
