#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/builders.hpp"
#include "sched/network_state.hpp"

namespace edgesched::net {
namespace {

/// a -- s1 -- b and a -- s2 -- s3 -- b: short path via s1, long via s2/s3.
struct TwoPathNetwork {
  Topology topology;
  NodeId a, b, s1, s2, s3;
  LinkId a_s1, s1_b, a_s2, s2_s3, s3_b;

  TwoPathNetwork() {
    a = topology.add_processor(1.0, "a");
    b = topology.add_processor(1.0, "b");
    s1 = topology.add_switch("s1");
    s2 = topology.add_switch("s2");
    s3 = topology.add_switch("s3");
    a_s1 = topology.add_duplex_link(a, s1).first;
    s1_b = topology.add_duplex_link(s1, b).first;
    a_s2 = topology.add_duplex_link(a, s2).first;
    s2_s3 = topology.add_duplex_link(s2, s3).first;
    s3_b = topology.add_duplex_link(s3, b).first;
  }
};

TEST(BfsRoute, PicksFewestHops) {
  TwoPathNetwork net;
  const Route route = bfs_route(net.topology, net.a, net.b);
  EXPECT_EQ(route, (Route{net.a_s1, net.s1_b}));
}

TEST(BfsRoute, SameNodeIsEmpty) {
  TwoPathNetwork net;
  EXPECT_TRUE(bfs_route(net.topology, net.a, net.a).empty());
}

TEST(BfsRoute, ThrowsWhenUnreachable) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  EXPECT_THROW((void)bfs_route(t, a, b), std::invalid_argument);
}

TEST(BfsRoute, RouteIsAlwaysValid) {
  Rng rng(3);
  RandomWanParams params;
  params.num_processors = 24;
  const Topology t = random_wan(params, rng);
  const auto& procs = t.processors();
  for (std::size_t i = 0; i < procs.size(); i += 3) {
    for (std::size_t j = 0; j < procs.size(); j += 5) {
      const Route route = bfs_route(t, procs[i], procs[j]);
      EXPECT_NO_THROW(t.validate_route(route, procs[i], procs[j]));
    }
  }
}

TEST(RouteCache, ReturnsSameRoute) {
  TwoPathNetwork net;
  RouteCache cache(net.topology);
  const Route& first = cache.route(net.a, net.b);
  const Route& second = cache.route(net.a, net.b);
  EXPECT_EQ(&first, &second);  // memoised
  EXPECT_EQ(first, (Route{net.a_s1, net.s1_b}));
}

TEST(DijkstraRoute, DefaultWeightIsTransferTime) {
  // Make the short path slow and the long path fast.
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  const NodeId s3 = t.add_switch();
  (void)t.add_link(a, s1, 0.1);
  (void)t.add_link(s1, b, 0.1);
  const LinkId fast1 = t.add_link(a, s2, 10.0);
  const LinkId fast2 = t.add_link(s2, s3, 10.0);
  const LinkId fast3 = t.add_link(s3, b, 10.0);
  const Route route = dijkstra_route(t, a, b);
  EXPECT_EQ(route, (Route{fast1, fast2, fast3}));
}

TEST(DijkstraRoute, CustomWeights) {
  TwoPathNetwork net;
  // Penalise the s1 path heavily.
  const auto weight = [&](LinkId l) {
    return (l == net.a_s1 || l == net.s1_b) ? 100.0 : 1.0;
  };
  const Route route = dijkstra_route(net.topology, net.a, net.b, weight);
  EXPECT_EQ(route, (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(DijkstraRouteProbe, AvoidsBusyLinks) {
  TwoPathNetwork net;
  // Probe that reports the s1 path as busy until t=100.
  const auto probe = [&](LinkId l, const ProbeState& state) {
    const double duration = 1.0;
    double start = state.earliest_start;
    if (l == net.a_s1 || l == net.s1_b) {
      start = std::max(start, 100.0);
    }
    const double finish =
        std::max(start + duration, state.min_finish);
    return ProbeResult{finish - duration, finish};
  };
  const Route route =
      dijkstra_route_probe(net.topology, net.a, net.b, 0.0, probe);
  EXPECT_EQ(route, (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(DijkstraRouteProbe, PrefersShortPathWhenIdle) {
  TwoPathNetwork net;
  const auto probe = [&](LinkId, const ProbeState& state) {
    const double finish = std::max(state.earliest_start + 1.0,
                                   state.min_finish);
    return ProbeResult{finish - 1.0, finish};
  };
  const Route route =
      dijkstra_route_probe(net.topology, net.a, net.b, 5.0, probe);
  EXPECT_EQ(route, (Route{net.a_s1, net.s1_b}));
}

TEST(DijkstraRouteProbe, SameNodeIsEmpty) {
  TwoPathNetwork net;
  const auto probe = [](LinkId, const ProbeState& state) {
    return ProbeResult{state.earliest_start, state.earliest_start + 1.0};
  };
  EXPECT_TRUE(
      dijkstra_route_probe(net.topology, net.a, net.a, 0.0, probe).empty());
}

TEST(DijkstraRouteProbe, ThrowsWhenUnreachable) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const auto probe = [](LinkId, const ProbeState& state) {
    return ProbeResult{state.earliest_start, state.earliest_start + 1.0};
  };
  EXPECT_THROW((void)dijkstra_route_probe(t, a, b, 0.0, probe),
               std::invalid_argument);
}

TEST(KShortestRoutes, FindsBothPathsOfTwoPathNetwork) {
  TwoPathNetwork net;
  const auto routes = net::k_shortest_routes(net.topology, net.a, net.b, 3);
  ASSERT_EQ(routes.size(), 2u);  // only two loopless paths exist
  EXPECT_EQ(routes[0], (Route{net.a_s1, net.s1_b}));
  EXPECT_EQ(routes[1], (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(KShortestRoutes, RespectsWeights) {
  TwoPathNetwork net;
  // Make the short path expensive: the 3-hop path must come first.
  const auto weight = [&](LinkId l) {
    return (l == net.a_s1 || l == net.s1_b) ? 10.0 : 1.0;
  };
  const auto routes =
      k_shortest_routes(net.topology, net.a, net.b, 2, weight);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0], (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(KShortestRoutes, AllRoutesValidAndLoopless) {
  Rng rng(21);
  RandomWanParams params;
  params.num_processors = 20;
  const Topology t = random_wan(params, rng);
  const auto& procs = t.processors();
  const auto routes = k_shortest_routes(t, procs[0], procs.back(), 5);
  EXPECT_GE(routes.size(), 1u);
  double prev_weight = 0.0;
  for (const Route& route : routes) {
    EXPECT_NO_THROW(t.validate_route(route, procs[0], procs.back()));
    // Loopless: no node visited twice.
    std::vector<NodeId> visited{procs[0]};
    for (LinkId l : route) {
      const NodeId next = t.link(l).dst;
      EXPECT_EQ(std::count(visited.begin(), visited.end(), next), 0);
      visited.push_back(next);
    }
    double total = 0.0;
    for (LinkId l : route) {
      total += 1.0 / t.link_speed(l);
    }
    EXPECT_GE(total, prev_weight - 1e-9);  // non-decreasing weights
    prev_weight = total;
  }
}

TEST(KShortestRoutes, RejectsBadArguments) {
  TwoPathNetwork net;
  EXPECT_THROW((void)k_shortest_routes(net.topology, net.a, net.b, 0),
               std::invalid_argument);
  EXPECT_THROW((void)k_shortest_routes(net.topology, net.a, net.a, 2),
               std::invalid_argument);
}

TEST(DijkstraRouteAvoiding, BansWork) {
  TwoPathNetwork net;
  std::vector<bool> banned_links(net.topology.num_links(), false);
  std::vector<bool> banned_nodes(net.topology.num_nodes(), false);
  banned_links[net.a_s1.index()] = true;
  const Route route = dijkstra_route_avoiding(
      net.topology, net.a, net.b, banned_links, banned_nodes);
  EXPECT_EQ(route, (Route{net.a_s2, net.s2_s3, net.s3_b}));
  banned_nodes[net.s2.index()] = true;
  const Route none = dijkstra_route_avoiding(
      net.topology, net.a, net.b, banned_links, banned_nodes);
  EXPECT_TRUE(none.empty());
}

TEST(DijkstraRouteProbe, MatchesBfsHopCountOnUniformIdleNetwork) {
  Rng rng(11);
  RandomWanParams params;
  params.num_processors = 16;
  const Topology t = random_wan(params, rng);
  const auto probe = [](LinkId, const ProbeState& state) {
    const double finish =
        std::max(state.earliest_start + 1.0, state.min_finish);
    return ProbeResult{finish - 1.0, finish};
  };
  const auto& procs = t.processors();
  for (std::size_t i = 0; i < procs.size(); i += 2) {
    const Route bfs = bfs_route(t, procs[0], procs[i]);
    const Route dij =
        dijkstra_route_probe(t, procs[0], procs[i], 0.0, probe);
    // On an idle homogeneous network the probe cost is hop count, so the
    // routes have equal length (ties may pick different links).
    EXPECT_EQ(dij.size(), bfs.size());
  }
}

// --- ProbedRouteCache / RoutingWorkspace -------------------------------
//
// The memo's validity rule (routing.hpp): a hit requires the exact same
// query AND an unchanged network load generation. These tests pin down
// that a link mutation can never let a stale route escape the cache.

/// Load-aware probe over an ExclusiveNetworkState, as OIHSA issues it.
struct LoadedProbe {
  const sched::ExclusiveNetworkState& network;
  double cost;
  ProbeResult operator()(LinkId link, const ProbeState& state) const {
    const timeline::Placement p = network.probe_link(
        link, state.earliest_start, state.min_finish, cost);
    return ProbeResult{p.start, p.finish};
  }
};

TEST(ProbedRouteCache, MissesAfterLinkMutation) {
  TwoPathNetwork net;
  sched::ExclusiveNetworkState network(net.topology, 4);
  ProbedRouteCache memo;
  const double cost = 2.0;
  const LoadedProbe probe{network, cost};

  const std::uint64_t g0 = network.generation();
  const Route before =
      dijkstra_route_probe(net.topology, net.a, net.b, 0.0, probe);
  memo.store(net.a, net.b, 0.0, cost, g0, before);
  ASSERT_NE(memo.lookup(net.a, net.b, 0.0, cost, g0), nullptr);
  EXPECT_EQ(before, (Route{net.a_s1, net.s1_b}));

  // Pile load onto the short path: the next query would steer around it,
  // so serving the memoized route now WOULD be stale.
  for (std::uint32_t i = 0; i < 3; ++i) {
    network.commit_edge_basic(dag::EdgeId(i),
                              Route{net.a_s1, net.s1_b}, 0.0, 50.0);
  }
  const std::uint64_t g1 = network.generation();
  ASSERT_NE(g1, g0);
  // Invalidation: the mutated generation can never hit the old entry.
  EXPECT_EQ(memo.lookup(net.a, net.b, 0.0, cost, g1), nullptr);
  // And the fresh computation indeed differs from the cached route.
  const Route after =
      dijkstra_route_probe(net.topology, net.a, net.b, 0.0, probe);
  EXPECT_EQ(after, (Route{net.a_s2, net.s2_s3, net.s3_b}));
  EXPECT_NE(after, before);
}

TEST(ProbedRouteCache, HitRequiresIdenticalQuery) {
  TwoPathNetwork net;
  ProbedRouteCache memo;
  memo.store(net.a, net.b, 1.0, 2.0, 7, Route{net.a_s1, net.s1_b});
  EXPECT_NE(memo.lookup(net.a, net.b, 1.0, 2.0, 7), nullptr);
  EXPECT_EQ(memo.lookup(net.a, net.b, 1.5, 2.0, 7), nullptr);  // ready
  EXPECT_EQ(memo.lookup(net.a, net.b, 1.0, 3.0, 7), nullptr);  // cost
  EXPECT_EQ(memo.lookup(net.b, net.a, 1.0, 2.0, 7), nullptr);  // reversed
}

TEST(ProbedRouteCache, CleanRollbackRestoresValidity) {
  TwoPathNetwork net;
  sched::ExclusiveNetworkState network(net.topology, 4);
  ProbedRouteCache memo;
  const double cost = 2.0;
  const LoadedProbe probe{network, cost};

  const std::uint64_t g0 = network.generation();
  const Route route =
      dijkstra_route_probe(net.topology, net.a, net.b, 0.0, probe);
  memo.store(net.a, net.b, 0.0, cost, g0, route);

  // Tentative commit + immediate uncommit (the Basic Algorithm's
  // evaluation pattern) provably restores the timelines, so the
  // generation — and with it the memo's validity — must come back.
  network.commit_edge_basic(dag::EdgeId(0u), Route{net.a_s1, net.s1_b},
                            0.0, 50.0);
  EXPECT_EQ(memo.lookup(net.a, net.b, 0.0, cost, network.generation()),
            nullptr);
  network.uncommit_edge(dag::EdgeId(0u));
  EXPECT_EQ(network.generation(), g0);
  const Route* hit =
      memo.lookup(net.a, net.b, 0.0, cost, network.generation());
  ASSERT_NE(hit, nullptr);
  // The restored-state memo answer matches a fresh search exactly.
  EXPECT_EQ(*hit,
            dijkstra_route_probe(net.topology, net.a, net.b, 0.0, probe));

  // Out-of-order rollback cannot prove restoration: generation must NOT
  // return to a previously seen value.
  network.commit_edge_basic(dag::EdgeId(1u), Route{net.a_s1, net.s1_b},
                            0.0, 10.0);
  network.commit_edge_basic(dag::EdgeId(2u), Route{net.a_s1, net.s1_b},
                            0.0, 10.0);
  const std::uint64_t g_both = network.generation();
  network.uncommit_edge(dag::EdgeId(1u));  // not the latest mutation
  EXPECT_NE(network.generation(), g0);
  EXPECT_NE(network.generation(), g_both);
}

TEST(RoutingWorkspace, ReuseMatchesFreshSearches) {
  Rng rng(29);
  RandomWanParams params;
  params.num_processors = 20;
  const Topology t = random_wan(params, rng);
  sched::ExclusiveNetworkState network(t, 64);
  const LoadedProbe probe{network, 3.0};
  // Load a few links so probes see non-trivial timelines.
  const auto& procs = t.processors();
  for (std::uint32_t i = 0; i + 1 < 8; ++i) {
    const Route r = bfs_route(t, procs[i], procs[i + 1]);
    if (!r.empty()) {
      network.commit_edge_basic(dag::EdgeId(i), r, 0.0, 5.0);
    }
  }
  RoutingWorkspace workspace;
  for (std::size_t i = 0; i < procs.size(); i += 2) {
    for (std::size_t j = 1; j < procs.size(); j += 3) {
      if (procs[i] == procs[j]) continue;
      const Route fresh =
          dijkstra_route_probe(t, procs[i], procs[j], 0.5, probe);
      const Route reused = dijkstra_route_probe(t, procs[i], procs[j],
                                                0.5, probe, &workspace);
      EXPECT_EQ(fresh, reused);
    }
  }
}

}  // namespace
}  // namespace edgesched::net
