#include "net/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/builders.hpp"

namespace edgesched::net {
namespace {

/// a -- s1 -- b and a -- s2 -- s3 -- b: short path via s1, long via s2/s3.
struct TwoPathNetwork {
  Topology topology;
  NodeId a, b, s1, s2, s3;
  LinkId a_s1, s1_b, a_s2, s2_s3, s3_b;

  TwoPathNetwork() {
    a = topology.add_processor(1.0, "a");
    b = topology.add_processor(1.0, "b");
    s1 = topology.add_switch("s1");
    s2 = topology.add_switch("s2");
    s3 = topology.add_switch("s3");
    a_s1 = topology.add_duplex_link(a, s1).first;
    s1_b = topology.add_duplex_link(s1, b).first;
    a_s2 = topology.add_duplex_link(a, s2).first;
    s2_s3 = topology.add_duplex_link(s2, s3).first;
    s3_b = topology.add_duplex_link(s3, b).first;
  }
};

TEST(BfsRoute, PicksFewestHops) {
  TwoPathNetwork net;
  const Route route = bfs_route(net.topology, net.a, net.b);
  EXPECT_EQ(route, (Route{net.a_s1, net.s1_b}));
}

TEST(BfsRoute, SameNodeIsEmpty) {
  TwoPathNetwork net;
  EXPECT_TRUE(bfs_route(net.topology, net.a, net.a).empty());
}

TEST(BfsRoute, ThrowsWhenUnreachable) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  EXPECT_THROW((void)bfs_route(t, a, b), std::invalid_argument);
}

TEST(BfsRoute, RouteIsAlwaysValid) {
  Rng rng(3);
  RandomWanParams params;
  params.num_processors = 24;
  const Topology t = random_wan(params, rng);
  const auto& procs = t.processors();
  for (std::size_t i = 0; i < procs.size(); i += 3) {
    for (std::size_t j = 0; j < procs.size(); j += 5) {
      const Route route = bfs_route(t, procs[i], procs[j]);
      EXPECT_NO_THROW(t.validate_route(route, procs[i], procs[j]));
    }
  }
}

TEST(RouteCache, ReturnsSameRoute) {
  TwoPathNetwork net;
  RouteCache cache(net.topology);
  const Route& first = cache.route(net.a, net.b);
  const Route& second = cache.route(net.a, net.b);
  EXPECT_EQ(&first, &second);  // memoised
  EXPECT_EQ(first, (Route{net.a_s1, net.s1_b}));
}

TEST(DijkstraRoute, DefaultWeightIsTransferTime) {
  // Make the short path slow and the long path fast.
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const NodeId s1 = t.add_switch();
  const NodeId s2 = t.add_switch();
  const NodeId s3 = t.add_switch();
  (void)t.add_link(a, s1, 0.1);
  (void)t.add_link(s1, b, 0.1);
  const LinkId fast1 = t.add_link(a, s2, 10.0);
  const LinkId fast2 = t.add_link(s2, s3, 10.0);
  const LinkId fast3 = t.add_link(s3, b, 10.0);
  const Route route = dijkstra_route(t, a, b);
  EXPECT_EQ(route, (Route{fast1, fast2, fast3}));
}

TEST(DijkstraRoute, CustomWeights) {
  TwoPathNetwork net;
  // Penalise the s1 path heavily.
  const auto weight = [&](LinkId l) {
    return (l == net.a_s1 || l == net.s1_b) ? 100.0 : 1.0;
  };
  const Route route = dijkstra_route(net.topology, net.a, net.b, weight);
  EXPECT_EQ(route, (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(DijkstraRouteProbe, AvoidsBusyLinks) {
  TwoPathNetwork net;
  // Probe that reports the s1 path as busy until t=100.
  const auto probe = [&](LinkId l, const ProbeState& state) {
    const double duration = 1.0;
    double start = state.earliest_start;
    if (l == net.a_s1 || l == net.s1_b) {
      start = std::max(start, 100.0);
    }
    const double finish =
        std::max(start + duration, state.min_finish);
    return ProbeResult{finish - duration, finish};
  };
  const Route route =
      dijkstra_route_probe(net.topology, net.a, net.b, 0.0, probe);
  EXPECT_EQ(route, (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(DijkstraRouteProbe, PrefersShortPathWhenIdle) {
  TwoPathNetwork net;
  const auto probe = [&](LinkId, const ProbeState& state) {
    const double finish = std::max(state.earliest_start + 1.0,
                                   state.min_finish);
    return ProbeResult{finish - 1.0, finish};
  };
  const Route route =
      dijkstra_route_probe(net.topology, net.a, net.b, 5.0, probe);
  EXPECT_EQ(route, (Route{net.a_s1, net.s1_b}));
}

TEST(DijkstraRouteProbe, SameNodeIsEmpty) {
  TwoPathNetwork net;
  const auto probe = [](LinkId, const ProbeState& state) {
    return ProbeResult{state.earliest_start, state.earliest_start + 1.0};
  };
  EXPECT_TRUE(
      dijkstra_route_probe(net.topology, net.a, net.a, 0.0, probe).empty());
}

TEST(DijkstraRouteProbe, ThrowsWhenUnreachable) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  const auto probe = [](LinkId, const ProbeState& state) {
    return ProbeResult{state.earliest_start, state.earliest_start + 1.0};
  };
  EXPECT_THROW((void)dijkstra_route_probe(t, a, b, 0.0, probe),
               std::invalid_argument);
}

TEST(KShortestRoutes, FindsBothPathsOfTwoPathNetwork) {
  TwoPathNetwork net;
  const auto routes = net::k_shortest_routes(net.topology, net.a, net.b, 3);
  ASSERT_EQ(routes.size(), 2u);  // only two loopless paths exist
  EXPECT_EQ(routes[0], (Route{net.a_s1, net.s1_b}));
  EXPECT_EQ(routes[1], (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(KShortestRoutes, RespectsWeights) {
  TwoPathNetwork net;
  // Make the short path expensive: the 3-hop path must come first.
  const auto weight = [&](LinkId l) {
    return (l == net.a_s1 || l == net.s1_b) ? 10.0 : 1.0;
  };
  const auto routes =
      k_shortest_routes(net.topology, net.a, net.b, 2, weight);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0], (Route{net.a_s2, net.s2_s3, net.s3_b}));
}

TEST(KShortestRoutes, AllRoutesValidAndLoopless) {
  Rng rng(21);
  RandomWanParams params;
  params.num_processors = 20;
  const Topology t = random_wan(params, rng);
  const auto& procs = t.processors();
  const auto routes = k_shortest_routes(t, procs[0], procs.back(), 5);
  EXPECT_GE(routes.size(), 1u);
  double prev_weight = 0.0;
  for (const Route& route : routes) {
    EXPECT_NO_THROW(t.validate_route(route, procs[0], procs.back()));
    // Loopless: no node visited twice.
    std::vector<NodeId> visited{procs[0]};
    for (LinkId l : route) {
      const NodeId next = t.link(l).dst;
      EXPECT_EQ(std::count(visited.begin(), visited.end(), next), 0);
      visited.push_back(next);
    }
    double total = 0.0;
    for (LinkId l : route) {
      total += 1.0 / t.link_speed(l);
    }
    EXPECT_GE(total, prev_weight - 1e-9);  // non-decreasing weights
    prev_weight = total;
  }
}

TEST(KShortestRoutes, RejectsBadArguments) {
  TwoPathNetwork net;
  EXPECT_THROW((void)k_shortest_routes(net.topology, net.a, net.b, 0),
               std::invalid_argument);
  EXPECT_THROW((void)k_shortest_routes(net.topology, net.a, net.a, 2),
               std::invalid_argument);
}

TEST(DijkstraRouteAvoiding, BansWork) {
  TwoPathNetwork net;
  std::vector<bool> banned_links(net.topology.num_links(), false);
  std::vector<bool> banned_nodes(net.topology.num_nodes(), false);
  banned_links[net.a_s1.index()] = true;
  const Route route = dijkstra_route_avoiding(
      net.topology, net.a, net.b, banned_links, banned_nodes);
  EXPECT_EQ(route, (Route{net.a_s2, net.s2_s3, net.s3_b}));
  banned_nodes[net.s2.index()] = true;
  const Route none = dijkstra_route_avoiding(
      net.topology, net.a, net.b, banned_links, banned_nodes);
  EXPECT_TRUE(none.empty());
}

TEST(DijkstraRouteProbe, MatchesBfsHopCountOnUniformIdleNetwork) {
  Rng rng(11);
  RandomWanParams params;
  params.num_processors = 16;
  const Topology t = random_wan(params, rng);
  const auto probe = [](LinkId, const ProbeState& state) {
    const double finish =
        std::max(state.earliest_start + 1.0, state.min_finish);
    return ProbeResult{finish - 1.0, finish};
  };
  const auto& procs = t.processors();
  for (std::size_t i = 0; i < procs.size(); i += 2) {
    const Route bfs = bfs_route(t, procs[0], procs[i]);
    const Route dij =
        dijkstra_route_probe(t, procs[0], procs[i], 0.0, probe);
    // On an idle homogeneous network the probe cost is hop count, so the
    // routes have equal length (ties may pick different links).
    EXPECT_EQ(dij.size(), bfs.size());
  }
}

}  // namespace
}  // namespace edgesched::net
