#include "sched/classic.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/replay.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

TEST(Classic, SingleProcessorSerialises) {
  Rng rng(1);
  const net::Topology topo = net::switched_star(1, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::fork_join(3, 2.0, 5.0);
  const Schedule s = ClassicScheduler{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

TEST(Classic, UsesDirectLinkSpeed) {
  dag::TaskGraph graph;
  const dag::TaskId a = graph.add_task(10.0, "a");
  const dag::TaskId b = graph.add_task(10.0, "b");
  const dag::TaskId c = graph.add_task(1.0, "c");
  const dag::EdgeId a_c = graph.add_edge(a, c, 4.0);
  (void)graph.add_edge(b, c, 8.0);

  net::Topology topo;
  const net::NodeId p0 = topo.add_processor(1.0, "p0");
  const net::NodeId p1 = topo.add_processor(1.0, "p1");
  topo.add_duplex_link(p0, p1, 2.0);

  const Schedule s = ClassicScheduler{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  // One producer per processor; c joins the bigger-edge producer; the
  // remote edge pays c/s(direct) = 4/2 or 8/2 on top of t_f = 10.
  ASSERT_NE(s.task(a).processor, s.task(b).processor);
  const EdgeCommunication& remote =
      s.task(c).processor == s.task(a).processor ? s.communication(
                                                       dag::EdgeId(1u))
                                                 : s.communication(a_c);
  EXPECT_EQ(remote.kind, EdgeCommunication::Kind::kContentionFree);
  EXPECT_GT(remote.arrival, 10.0);
}

TEST(Classic, NoLinkResourcesBooked) {
  Rng rng(3);
  dag::LayeredDagParams params;
  params.num_tasks = 20;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 4;
  const net::Topology topo = net::random_wan(wan, rng);
  const Schedule s = ClassicScheduler{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = s.communication(e);
    EXPECT_TRUE(comm.kind == EdgeCommunication::Kind::kLocal ||
                comm.kind == EdgeCommunication::Kind::kContentionFree);
    EXPECT_TRUE(comm.occupations.empty());
    EXPECT_TRUE(comm.profiles.empty());
  }
}

TEST(Classic, RejectedByStrictValidator) {
  Rng rng(4);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::fork(3, 5.0, 1.0);
  const Schedule s = ClassicScheduler{}.schedule(graph, topo);
  ValidationOptions strict;
  strict.allow_contention_free = false;
  if (s.makespan() > 0.0) {
    // Only fails when at least one edge actually crossed processors.
    bool crossed = false;
    for (dag::EdgeId e : graph.all_edges()) {
      crossed = crossed || s.communication(e).kind ==
                               EdgeCommunication::Kind::kContentionFree;
    }
    if (crossed) {
      EXPECT_FALSE(is_valid(graph, topo, s, strict));
    }
  }
}

TEST(Replay, KeepsAssignmentsAndIsValid) {
  Rng rng(5);
  dag::LayeredDagParams params;
  params.num_tasks = 30;
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 2.0);
  net::RandomWanParams wan;
  wan.num_processors = 6;
  const net::Topology topo = net::random_wan(wan, rng);

  const Schedule ideal = ClassicScheduler{}.schedule(graph, topo);
  const Schedule real = replay_under_contention(graph, topo, ideal);
  validate_or_throw(graph, topo, real);
  for (dag::TaskId t : graph.all_tasks()) {
    EXPECT_EQ(real.task(t).processor, ideal.task(t).processor);
  }
  EXPECT_EQ(real.algorithm(), "CLASSIC-replay");
}

TEST(Replay, ContentionNeverHelps) {
  // The replayed makespan can only be >= the idealised one: contention
  // adds waiting, never removes it.
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    Rng rng(seed);
    dag::LayeredDagParams params;
    params.num_tasks = 25;
    dag::TaskGraph graph = dag::random_layered(params, rng);
    dag::rescale_to_ccr(graph, 5.0);
    net::RandomWanParams wan;
    wan.num_processors = 6;
    const net::Topology topo = net::random_wan(wan, rng);
    const Schedule ideal = ClassicScheduler{}.schedule(graph, topo);
    const Schedule real = replay_under_contention(graph, topo, ideal);
    EXPECT_GE(real.makespan(), ideal.makespan() - 1e-6);
  }
}

TEST(Replay, NoOpWithoutCrossEdges) {
  Rng rng(9);
  const net::Topology topo =
      net::switched_star(1, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::chain(4, 2.0, 3.0);
  const Schedule ideal = ClassicScheduler{}.schedule(graph, topo);
  const Schedule real = replay_under_contention(graph, topo, ideal);
  EXPECT_DOUBLE_EQ(real.makespan(), ideal.makespan());
}

}  // namespace
}  // namespace edgesched::sched
