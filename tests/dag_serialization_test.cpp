#include "dag/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dag/generators.hpp"

namespace edgesched::dag {
namespace {

TEST(DagText, RoundTripsSmallGraph) {
  TaskGraph g("demo");
  const TaskId a = g.add_task(2.5, "a");
  const TaskId b = g.add_task(3.0, "b");
  g.add_edge(a, b, 7.25);

  const TaskGraph parsed = from_text(to_text(g));
  EXPECT_EQ(parsed.name(), "demo");
  ASSERT_EQ(parsed.num_tasks(), 2u);
  ASSERT_EQ(parsed.num_edges(), 1u);
  EXPECT_DOUBLE_EQ(parsed.weight(TaskId(0u)), 2.5);
  EXPECT_EQ(parsed.task(TaskId(1u)).name, "b");
  EXPECT_DOUBLE_EQ(parsed.cost(EdgeId(0u)), 7.25);
}

TEST(DagText, RoundTripsGeneratedGraph) {
  Rng rng(5);
  LayeredDagParams params;
  params.num_tasks = 40;
  const TaskGraph g = random_layered(params, rng);
  const TaskGraph parsed = from_text(to_text(g));
  ASSERT_EQ(parsed.num_tasks(), g.num_tasks());
  ASSERT_EQ(parsed.num_edges(), g.num_edges());
  for (EdgeId e : g.all_edges()) {
    EXPECT_EQ(parsed.edge(e).src, g.edge(e).src);
    EXPECT_EQ(parsed.edge(e).dst, g.edge(e).dst);
    EXPECT_DOUBLE_EQ(parsed.edge(e).cost, g.edge(e).cost);
  }
}

TEST(DagText, SkipsCommentsAndBlankLines) {
  const TaskGraph parsed = from_text(
      "# a comment\n"
      "graph g\n"
      "\n"
      "task 0 1.5\n"
      "  # indented comment\n"
      "task 1 2.5 named\n"
      "edge 0 1 3\n");
  EXPECT_EQ(parsed.num_tasks(), 2u);
  EXPECT_EQ(parsed.task(TaskId(1u)).name, "named");
}

TEST(DagText, RejectsMalformedInput) {
  EXPECT_THROW((void)from_text("task zero 1.0\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("task 1 1.0\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("bogus 1 2\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("task 0 1\nedge 0 5 1\n"),
               std::invalid_argument);
}

TEST(DagText, RejectsCyclicInput) {
  EXPECT_THROW((void)from_text("task 0 1\n"
                               "task 1 1\n"
                               "edge 0 1 1\n"
                               "edge 1 0 1\n"),
               std::invalid_argument);
}

TEST(Stg, ParsesKasaharaFormat) {
  // 2 real tasks; 0 and 3 are the zero-cost dummy entry/exit.
  const std::string text =
      "2\n"
      "0 0 0\n"
      "1 7 1 0\n"
      "2 4 1 1\n"
      "3 0 1 2\n";
  const TaskGraph g = from_stg(text, 5.0);
  ASSERT_EQ(g.num_tasks(), 4u);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_DOUBLE_EQ(g.weight(TaskId(1u)), 7.0);
  EXPECT_DOUBLE_EQ(g.weight(TaskId(0u)), 0.0);
  EXPECT_DOUBLE_EQ(g.cost(EdgeId(0u)), 5.0);
  EXPECT_EQ(g.entry_tasks(), std::vector<TaskId>{TaskId(0u)});
  EXPECT_EQ(g.exit_tasks(), std::vector<TaskId>{TaskId(3u)});
}

TEST(Stg, RoundTrips) {
  const std::string text =
      "3\n"
      "0 0 0\n"
      "1 2 1 0\n"
      "2 3 1 0\n"
      "3 4 2 1 2\n"
      "4 0 1 3\n";
  const TaskGraph g = from_stg(text, 1.0);
  std::ostringstream os;
  write_stg(os, g);
  const TaskGraph again = from_stg(os.str(), 1.0);
  ASSERT_EQ(again.num_tasks(), g.num_tasks());
  ASSERT_EQ(again.num_edges(), g.num_edges());
  for (TaskId t : g.all_tasks()) {
    EXPECT_DOUBLE_EQ(again.weight(t), g.weight(t));
  }
}

TEST(Stg, RejectsMalformedInput) {
  EXPECT_THROW((void)from_stg(""), std::invalid_argument);
  EXPECT_THROW((void)from_stg("2\n0 0 0\n"), std::invalid_argument);
  EXPECT_THROW((void)from_stg("1\n5 0 0\n0 0 0\n1 0 1 0\n"),
               std::invalid_argument);
}

TEST(Stg, WriteRejectsNonStgShapedGraphs) {
  // Two entries: not STG-shaped.
  TaskGraph g;
  (void)g.add_task(1.0);
  (void)g.add_task(1.0);
  std::ostringstream os;
  EXPECT_THROW(write_stg(os, g), std::invalid_argument);
}

TEST(DagDot, ContainsNodesAndEdges) {
  TaskGraph g("dotted");
  const TaskId a = g.add_task(1.0, "first");
  const TaskId b = g.add_task(2.0, "second");
  g.add_edge(a, b, 3.0);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"dotted\""), std::string::npos);
  EXPECT_NE(dot.find("first"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
}

}  // namespace
}  // namespace edgesched::dag
