#include "net/serialization.hpp"

#include <gtest/gtest.h>

#include "net/builders.hpp"

namespace edgesched::net {
namespace {

TEST(NetText, RoundTripsDuplexTopology) {
  Topology t("pair");
  const NodeId a = t.add_processor(2.0, "a");
  const NodeId s = t.add_switch("sw");
  const NodeId b = t.add_processor(3.0, "b");
  t.add_duplex_link(a, s, 4.0);
  t.add_duplex_link(s, b, 5.0);

  const Topology parsed = from_text(to_text(t));
  EXPECT_EQ(parsed.name(), "pair");
  EXPECT_EQ(parsed.num_nodes(), 3u);
  EXPECT_EQ(parsed.num_processors(), 2u);
  EXPECT_EQ(parsed.num_links(), 4u);
  EXPECT_DOUBLE_EQ(parsed.processor_speed(NodeId(0u)), 2.0);
  EXPECT_FALSE(parsed.is_processor(NodeId(1u)));
  EXPECT_TRUE(parsed.processors_connected());
}

TEST(NetText, PreservesHalfDuplexSharing) {
  Topology t;
  const NodeId a = t.add_processor();
  const NodeId b = t.add_processor();
  t.add_half_duplex_link(a, b, 2.0);
  const Topology parsed = from_text(to_text(t));
  ASSERT_EQ(parsed.num_links(), 2u);
  EXPECT_EQ(parsed.domain(LinkId(0u)), parsed.domain(LinkId(1u)));
}

TEST(NetText, PreservesBusSharing) {
  Topology t;
  std::vector<NodeId> members{t.add_processor(), t.add_processor(),
                              t.add_processor()};
  t.add_bus(members, 3.0);
  const Topology parsed = from_text(to_text(t));
  EXPECT_EQ(parsed.num_links(), 6u);
  EXPECT_EQ(parsed.num_domains(), 1u);
}

TEST(NetText, RoundTripsGeneratedWan) {
  Rng rng(9);
  RandomWanParams params;
  params.num_processors = 12;
  const Topology t = random_wan(params, rng);
  const Topology parsed = from_text(to_text(t));
  EXPECT_EQ(parsed.num_nodes(), t.num_nodes());
  EXPECT_EQ(parsed.num_links(), t.num_links());
  EXPECT_EQ(parsed.num_processors(), t.num_processors());
  EXPECT_TRUE(parsed.processors_connected());
}

TEST(NetText, RejectsMalformedInput) {
  EXPECT_THROW((void)from_text("processor x 1\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("processor 1 1\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("wat 0\n"), std::invalid_argument);
}

TEST(NetDot, ContainsShapes) {
  Topology t("dotnet");
  const NodeId p = t.add_processor(1.0, "cpu0");
  const NodeId s = t.add_switch("sw0");
  t.add_link(p, s, 2.0);
  const std::string dot = to_dot(t);
  EXPECT_NE(dot.find("digraph \"dotnet\""), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=circle"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

}  // namespace
}  // namespace edgesched::net
