#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "net/builders.hpp"
#include "sched/annealing.hpp"
#include "sched/genetic.hpp"
#include "sched/oihsa.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
};

Instance make(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks = 20;
  Instance inst{dag::random_layered(params, rng), net::Topology{}};
  dag::rescale_to_ccr(inst.graph, 2.0);
  net::RandomWanParams wan;
  wan.num_processors = 4;
  inst.topo = net::random_wan(wan, rng);
  return inst;
}

GeneticScheduler::Options small_ga() {
  GeneticScheduler::Options options;
  options.population = 8;
  options.generations = 6;
  return options;
}

AnnealingScheduler::Options small_sa() {
  AnnealingScheduler::Options options;
  options.iterations = 60;
  return options;
}

TEST(Genetic, ProducesValidSchedules) {
  const Instance inst = make(1);
  const Schedule s =
      GeneticScheduler(small_ga()).schedule(inst.graph, inst.topo);
  validate_or_throw(inst.graph, inst.topo, s);
  EXPECT_EQ(s.algorithm(), "GA");
}

TEST(Genetic, NeverWorseThanItsSeeds) {
  // The initial population contains the OIHSA assignment and the search
  // is elitist, so the result cannot be worse than OIHSA's assignment
  // re-evaluated by the fixed-assignment scheduler.
  const Instance inst = make(2);
  const double seed_cost = assignment_makespan(
      inst.graph, inst.topo,
      assignment_of(inst.graph, Oihsa{}.schedule(inst.graph, inst.topo)));
  const Schedule s =
      GeneticScheduler(small_ga()).schedule(inst.graph, inst.topo);
  EXPECT_LE(s.makespan(), seed_cost + 1e-6);
}

TEST(Genetic, DeterministicForSeed) {
  const Instance inst = make(3);
  const GeneticScheduler ga(small_ga());
  EXPECT_DOUBLE_EQ(ga.schedule(inst.graph, inst.topo).makespan(),
                   ga.schedule(inst.graph, inst.topo).makespan());
}

TEST(Genetic, RejectsBadOptions) {
  GeneticScheduler::Options bad;
  bad.population = 2;
  EXPECT_THROW(GeneticScheduler{bad}, std::invalid_argument);
  bad = GeneticScheduler::Options{};
  bad.mutation_rate = 1.5;
  EXPECT_THROW(GeneticScheduler{bad}, std::invalid_argument);
  bad = GeneticScheduler::Options{};
  bad.tournament = 0;
  EXPECT_THROW(GeneticScheduler{bad}, std::invalid_argument);
}

TEST(Annealing, ProducesValidSchedules) {
  const Instance inst = make(4);
  const Schedule s =
      AnnealingScheduler(small_sa()).schedule(inst.graph, inst.topo);
  validate_or_throw(inst.graph, inst.topo, s);
  EXPECT_EQ(s.algorithm(), "SA");
}

TEST(Annealing, NeverWorseThanItsStart) {
  const Instance inst = make(5);
  const double start_cost = assignment_makespan(
      inst.graph, inst.topo,
      assignment_of(inst.graph, Oihsa{}.schedule(inst.graph, inst.topo)));
  const Schedule s =
      AnnealingScheduler(small_sa()).schedule(inst.graph, inst.topo);
  EXPECT_LE(s.makespan(), start_cost + 1e-6);
}

TEST(Annealing, DeterministicForSeed) {
  const Instance inst = make(6);
  const AnnealingScheduler sa(small_sa());
  EXPECT_DOUBLE_EQ(sa.schedule(inst.graph, inst.topo).makespan(),
                   sa.schedule(inst.graph, inst.topo).makespan());
}

TEST(Annealing, RejectsBadOptions) {
  AnnealingScheduler::Options bad;
  bad.iterations = 0;
  EXPECT_THROW(AnnealingScheduler{bad}, std::invalid_argument);
  bad = AnnealingScheduler::Options{};
  bad.cooling = 1.0;
  EXPECT_THROW(AnnealingScheduler{bad}, std::invalid_argument);
}

TEST(Metaheuristics, SearchImprovesOnRandomAssignments) {
  // Sanity: on a contended instance the GA result beats the mean random
  // assignment comfortably.
  const Instance inst = make(7);
  Rng rng(7);
  double random_total = 0.0;
  const auto& procs = inst.topo.processors();
  for (int k = 0; k < 5; ++k) {
    Assignment random_assignment(inst.graph.num_tasks());
    for (auto& gene : random_assignment) {
      gene = procs[rng.index(procs.size())];
    }
    random_total +=
        assignment_makespan(inst.graph, inst.topo, random_assignment);
  }
  const Schedule s =
      GeneticScheduler(small_ga()).schedule(inst.graph, inst.topo);
  EXPECT_LT(s.makespan(), random_total / 5.0);
}

}  // namespace
}  // namespace edgesched::sched
