// Equivalence properties of the processor timeline's hierarchical gap
// index.
//
// `ProcessorTimeline::earliest_start` serves insertion queries through
// an implicit-treap gap index once the timeline outgrows the linear
// cutoff. The index is a pure fast path: every answer must be
// bit-identical to `earliest_start_linear`, the retained reference
// scan, including in the eps-tolerance corners (zero-length slots,
// commits overlapping a neighbour within tolerance, non-monotone gap
// starts). These tests drive both paths in lockstep over randomized
// commit sequences and hostile hand-built layouts.
#include <gtest/gtest.h>

#include <vector>

#include "timeline/processor_timeline.hpp"
#include "timeline/tolerance.hpp"
#include "util/rng.hpp"

namespace edgesched::timeline {
namespace {

class ProcessorGapIndexProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

// Randomized query/commit sequences: each query must agree between the
// indexed and linear paths, and the mirrored gap index must track the
// slot vector exactly throughout.
TEST_P(ProcessorGapIndexProperty, IndexedStartMatchesLinearOverSequence) {
  Rng rng(GetParam());
  ProcessorTimeline tl;
  for (std::size_t i = 0; i < 1500; ++i) {
    const double horizon = tl.last_finish();
    const double ready = rng.uniform_real(0.0, horizon + 10.0);
    // Zero durations are the recovery-stub / dummy-task case and the
    // worst eps-window stressor: keep them common.
    const double duration =
        rng.bernoulli(0.15) ? 0.0 : rng.uniform_real(0.01, 5.0);

    const double indexed = tl.earliest_start(ready, duration);
    const double linear = tl.earliest_start_linear(ready, duration);
    ASSERT_EQ(indexed, linear) << "round " << i;

    if (i % 3 == 0) {
      tl.commit(dag::TaskId(i), indexed, duration);
    }
    if (i % 100 == 0) {
      tl.check_invariants();
    }
  }
  tl.check_invariants();
}

// Large-magnitude times (makespans reach 1e7 at paper scale): the
// binary-search skip threshold and the index's admission caps must
// respect the relative tolerance.
TEST_P(ProcessorGapIndexProperty, IndexedStartMatchesLinearAtLargeMagnitudes) {
  Rng rng(GetParam() + 100);
  ProcessorTimeline tl;
  const double base = 1e7;
  for (std::size_t i = 0; i < 400; ++i) {
    const double ready = base + rng.uniform_real(0.0, 1000.0);
    const double duration =
        rng.bernoulli(0.2) ? 0.0 : rng.uniform_real(0.5, 20.0);
    const double indexed = tl.earliest_start(ready, duration);
    const double linear = tl.earliest_start_linear(ready, duration);
    ASSERT_EQ(indexed, linear) << "round " << i;
    if (i % 2 == 0) {
      tl.commit(dag::TaskId(i), indexed, duration);
    }
  }
  tl.check_invariants();
}

// Hostile layout: a slot whose finish overruns the next slot's start
// within tolerance leaves the gap-start sequence non-monotone (gap
// starts 10+4e-9, then 10). Queries landing inside that eps window must
// still match the linear scan — this is exactly the case a key-ordered
// (rather than position-ordered) index would get wrong.
TEST(ProcessorGapIndexHostile, EpsOverlapKeepsPathsIdentical) {
  ProcessorTimeline tl;
  // Padding far to the right pushes the timeline over the linear
  // cutoff so earliest_start really exercises the index.
  for (std::size_t i = 0; i < ProcessorTimeline::kIndexedScanThreshold + 4;
       ++i) {
    const double start = 1000.0 + 10.0 * static_cast<double>(i);
    tl.commit(dag::TaskId(100 + i), start, 5.0);
  }
  const double overrun = 10.0 + 4e-9;  // within time_eps(10) of 10.0
  tl.commit(dag::TaskId(std::size_t{0}), 5.0, overrun - 5.0);  // 10 + 4e-9
  tl.commit(dag::TaskId(std::size_t{1}), 10.0, 0.0);  // zero-length at 10
  tl.check_invariants();

  const double probes[] = {0.0,  2.0,     9.999999999, 10.0,
                           overrun, 10.5, 999.0,       5000.0};
  const double durations[] = {0.0, 1e-12, 0.5, 3.0, 80.0};
  for (const double ready : probes) {
    for (const double duration : durations) {
      ASSERT_EQ(tl.earliest_start(ready, duration),
                tl.earliest_start_linear(ready, duration))
          << "ready " << ready << " duration " << duration;
    }
  }
}

// Stacked zero-length slots create duplicate zero-width gaps; the index
// must mirror them all and keep answering identically.
TEST(ProcessorGapIndexHostile, ZeroLengthClustersStayConsistent) {
  ProcessorTimeline tl;
  for (std::size_t i = 0; i < ProcessorTimeline::kIndexedScanThreshold;
       ++i) {
    tl.commit(dag::TaskId(i), 50.0 + 5.0 * static_cast<double>(i), 2.0);
  }
  for (std::size_t i = 0; i < 6; ++i) {
    tl.commit(dag::TaskId(200 + i), 10.0, 0.0);
  }
  tl.check_invariants();
  for (const double ready : {0.0, 9.5, 10.0, 10.1, 49.0, 200.0}) {
    for (const double duration : {0.0, 0.4, 3.0, 41.0}) {
      ASSERT_EQ(tl.earliest_start(ready, duration),
                tl.earliest_start_linear(ready, duration))
          << "ready " << ready << " duration " << duration;
    }
  }
}

// MachineState is a value type: a copied timeline must carry a fully
// consistent index and keep agreeing with the linear oracle as both
// copies diverge.
TEST(ProcessorGapIndexHostile, CopiedTimelineKeepsConsistentIndex) {
  Rng rng(7);
  ProcessorTimeline tl;
  for (std::size_t i = 0; i < 40; ++i) {
    const double ready = rng.uniform_real(0.0, tl.last_finish() + 4.0);
    const double duration = rng.uniform_real(0.1, 3.0);
    tl.commit(dag::TaskId(i), tl.earliest_start(ready, duration), duration);
  }
  ProcessorTimeline copy = tl;
  copy.check_invariants();
  for (std::size_t i = 0; i < 60; ++i) {
    const double ready = rng.uniform_real(0.0, copy.last_finish() + 4.0);
    const double duration = rng.uniform_real(0.1, 3.0);
    const double start = copy.earliest_start(ready, duration);
    ASSERT_EQ(start, copy.earliest_start_linear(ready, duration));
    copy.commit(dag::TaskId(100 + i), start, duration);
  }
  copy.check_invariants();
  tl.check_invariants();  // original untouched by the copy's growth
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcessorGapIndexProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace edgesched::timeline
