// svc::Histogram bucket layout + quantile estimator, MetricsSnapshot
// exposition, and MetricsRegistry thread-safety (run under TSan in CI).
#include "obs/metrics_snapshot.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "svc/metrics.hpp"

namespace edgesched {
namespace {

using svc::Histogram;
using svc::MetricsRegistry;

TEST(HistogramLayout, BucketsArePowersOfTwoWithNoHole) {
  // The PR 2 layout jumped 1 s -> 100 s; every adjacent pair must now be
  // exactly a factor of two apart, so no latency band is decades wide.
  ASSERT_GE(Histogram::kUpperBounds.size(), 2u);
  for (std::size_t i = 1; i < Histogram::kUpperBounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(Histogram::kUpperBounds[i],
                     2.0 * Histogram::kUpperBounds[i - 1])
        << "gap after bound " << i - 1;
  }
  EXPECT_DOUBLE_EQ(Histogram::kUpperBounds.front(),
                   std::ldexp(1.0, Histogram::kMinExponent));
  EXPECT_DOUBLE_EQ(Histogram::kUpperBounds.back(),
                   std::ldexp(1.0, Histogram::kMaxExponent));
  EXPECT_EQ(Histogram::kNumBuckets, Histogram::kUpperBounds.size() + 1);
}

TEST(HistogramLayout, ObserveLandsInTheTightestLeBucket) {
  Histogram h;
  // Exactly on a bound: the Prometheus `le` convention means the value
  // belongs in that bound's bucket, not the next one.
  h.observe(1.0);
  const std::size_t one_second =
      static_cast<std::size_t>(0 - Histogram::kMinExponent);
  EXPECT_EQ(h.bucket(one_second), 1u);
  // Just above: next bucket.
  h.observe(1.0000001);
  EXPECT_EQ(h.bucket(one_second + 1), 1u);
  // Below the smallest bound, zero, negative, all collapse into bucket 0.
  h.observe(0.0);
  h.observe(-3.0);
  h.observe(Histogram::kUpperBounds.front() / 2.0);
  EXPECT_EQ(h.bucket(0), 3u);
  // Above the largest finite bound: +inf bucket.
  h.observe(2.0 * Histogram::kUpperBounds.back());
  EXPECT_EQ(h.bucket(Histogram::kUpperBounds.size()), 1u);
  EXPECT_EQ(h.count(), 6u);
}

TEST(HistogramQuantile, WithinOnePowerOfTwoOfTruth) {
  // A spread of known latencies: the estimate may land anywhere inside
  // the true value's bucket, i.e. within [true/2, true] bounds of log2
  // resolution.
  Histogram h;
  const std::vector<double> values = {0.00001, 0.0001, 0.0005, 0.001,
                                      0.003,   0.01,   0.02,   0.05,
                                      0.1,     0.4};
  for (double v : values) {
    h.observe(v);
  }
  for (double q : {0.5, 0.95, 0.99}) {
    const double rank = std::ceil(q * static_cast<double>(values.size()));
    const double truth = values[static_cast<std::size_t>(rank) - 1];
    const double estimate = h.quantile(q);
    EXPECT_LE(estimate, 2.0 * truth) << "q=" << q;
    EXPECT_GE(estimate, truth / 2.0) << "q=" << q;
  }
}

TEST(HistogramQuantile, InterpolatesInsideTheWinningBucket) {
  // 4 observations in one bucket (bounds 1..2 s): ranks 1..4 interpolate
  // to 1.25, 1.5, 1.75, 2.0.
  Histogram h;
  for (int i = 0; i < 4; ++i) {
    h.observe(1.5);
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 1.75);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(HistogramQuantile, EdgeCases) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

  Histogram h;
  h.observe(0.01);
  EXPECT_GT(h.quantile(-1.0), 0.0);  // clamps to q=0, first observation
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));

  // Everything in +inf clamps to the largest finite bound.
  Histogram overflow;
  overflow.observe(10.0 * Histogram::kUpperBounds.back());
  EXPECT_DOUBLE_EQ(overflow.quantile(0.5), Histogram::kUpperBounds.back());
}

TEST(MetricsRegistry, ResetPreservesReferences) {
  MetricsRegistry registry;
  svc::Counter& counter = registry.counter("requests");
  Histogram& histogram = registry.histogram("latency");
  counter.increment(7);
  histogram.observe(0.25);
  registry.reset_for_test();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  // The same objects keep working after the reset.
  counter.increment();
  histogram.observe(0.5);
  EXPECT_EQ(registry.counter("requests").value(), 1u);
  EXPECT_EQ(registry.histogram("latency").count(), 1u);
  EXPECT_EQ(&registry.counter("requests"), &counter);
  EXPECT_EQ(&registry.histogram("latency"), &histogram);
}

TEST(MetricsRegistry, TextDumpEmitsQuantileLines) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("svc_schedule_seconds");
  for (int i = 0; i < 100; ++i) {
    h.observe(0.001 * (i + 1));
  }
  const std::string dump = registry.text_dump();
  for (const char* needle :
       {"le +inf 100", " p50 ", " p95 ", " p99 "}) {
    EXPECT_NE(dump.find(needle), std::string::npos) << needle;
  }
}

TEST(MetricsRegistry, ConcurrentObserversAndReaders) {
  // Hammered by writers while a reader keeps dumping and snapshotting;
  // TSan (CI job `tsan`) verifies the registry is race-free and the
  // final totals prove no increment was lost.
  MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr int kIterations = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, w] {
      svc::Counter& counter = registry.counter("ops");
      Histogram& histogram = registry.histogram("latency");
      for (int i = 0; i < kIterations; ++i) {
        counter.increment();
        histogram.observe(0.0001 * ((w + 1) * (i % 17 + 1)));
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      (void)registry.text_dump();
      (void)obs::MetricsSnapshot::capture(registry);
    }
  });
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(registry.counter("ops").value(),
            static_cast<std::uint64_t>(kWriters) * kIterations);
  EXPECT_EQ(registry.histogram("latency").count(),
            static_cast<std::uint64_t>(kWriters) * kIterations);
}

TEST(MetricsSnapshot, CaptureDeltaAndSequence) {
  MetricsRegistry registry;
  registry.counter("requests").increment(10);
  registry.histogram("latency").observe(0.002);

  const obs::MetricsSnapshot first = obs::MetricsSnapshot::capture(registry);
  registry.counter("requests").increment(5);
  registry.histogram("latency").observe(0.004);
  const obs::MetricsSnapshot second =
      obs::MetricsSnapshot::capture(registry);

  EXPECT_GT(second.sequence, first.sequence);
  EXPECT_EQ(first.counters.at("requests"), 10u);
  EXPECT_EQ(second.counters.at("requests"), 15u);

  const obs::MetricsSnapshot delta = second.delta_since(first);
  EXPECT_EQ(delta.counters.at("requests"), 5u);
  EXPECT_EQ(delta.histograms.at("latency").count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("latency").sum, 0.004);

  // Delta clamps at zero when the registry was reset in between.
  registry.reset_for_test();
  const obs::MetricsSnapshot after_reset =
      obs::MetricsSnapshot::capture(registry);
  const obs::MetricsSnapshot clamped = after_reset.delta_since(second);
  EXPECT_EQ(clamped.counters.at("requests"), 0u);
}

TEST(MetricsSnapshot, PrometheusAndJsonShapes) {
  MetricsRegistry registry;
  registry.counter("svc_requests_total").increment(3);
  registry.histogram("svc_schedule_seconds").observe(0.01);
  const obs::MetricsSnapshot snap = obs::MetricsSnapshot::capture(registry);

  const std::string prom = snap.to_prometheus();
  for (const char* needle :
       {"# TYPE svc_requests_total counter", "svc_requests_total 3",
        "# TYPE svc_schedule_seconds histogram",
        "svc_schedule_seconds_bucket{le=\"+Inf\"} 1",
        "svc_schedule_seconds_count 1",
        "svc_schedule_seconds{quantile=\"0.5\"}"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << needle;
  }

  const obs::JsonValue json = snap.to_json();
  const std::string text = json.dump();
  // Round-trips through the obs JSON parser.
  const obs::JsonValue parsed = obs::JsonValue::parse(text);
  EXPECT_EQ(parsed.at("type").as_string(), "metrics_snapshot");
  EXPECT_DOUBLE_EQ(
      parsed.at("counters").at("svc_requests_total").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(parsed.at("histograms")
                       .at("svc_schedule_seconds")
                       .at("count")
                       .as_number(),
                   1.0);
}

TEST(MetricsSnapshot, StaticQuantileMatchesLiveHistogram) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency");
  for (int i = 0; i < 64; ++i) {
    h.observe(0.001 * (i + 1));
  }
  const obs::MetricsSnapshot snap = obs::MetricsSnapshot::capture(registry);
  const auto& data = snap.histograms.at("latency");
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(obs::MetricsSnapshot::quantile(data, q),
                     h.quantile(q))
        << "q=" << q;
  }
}

TEST(PeriodicSnapshotter, AlwaysWritesAtLeastOneParsableLine) {
  MetricsRegistry registry;
  registry.counter("requests").increment(2);
  std::ostringstream os;
  {
    obs::PeriodicSnapshotter snapshotter(
        registry, os,
        obs::SnapshotterOptions{.interval = std::chrono::hours(1)});
    // Destroyed immediately: the interval never elapses, the destructor
    // still flushes one final line.
  }
  std::istringstream lines(os.str());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    const obs::JsonValue doc = obs::JsonValue::parse(line);
    EXPECT_EQ(doc.at("type").as_string(), "metrics_snapshot");
    ++parsed;
  }
  EXPECT_GE(parsed, 1u);
}

}  // namespace
}  // namespace edgesched
