#include "sched/schedule.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "net/builders.hpp"

namespace edgesched::sched {
namespace {

TEST(Schedule, MakespanOfEmptySchedule) {
  const Schedule s("X", 0, 0);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
  EXPECT_EQ(s.algorithm(), "X");
}

TEST(Schedule, MakespanTracksLatestFinish) {
  Schedule s("X", 3, 0);
  s.place_task(dag::TaskId(0u), TaskPlacement{net::NodeId(0u), 0.0, 5.0});
  s.place_task(dag::TaskId(1u), TaskPlacement{net::NodeId(1u), 2.0, 9.0});
  s.place_task(dag::TaskId(2u), TaskPlacement{net::NodeId(0u), 5.0, 7.0});
  EXPECT_DOUBLE_EQ(s.makespan(), 9.0);
}

TEST(Schedule, DoublePlacementIsRejected) {
  Schedule s("X", 1, 0);
  s.place_task(dag::TaskId(0u), TaskPlacement{net::NodeId(0u), 0.0, 1.0});
  EXPECT_THROW(
      s.place_task(dag::TaskId(0u),
                   TaskPlacement{net::NodeId(0u), 1.0, 2.0}),
      InternalError);
}

TEST(Schedule, CommunicationRoundTrip) {
  Schedule s("X", 2, 1);
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kExclusive;
  comm.route = {net::LinkId(3u)};
  comm.occupations = {LinkOccupation{net::LinkId(3u), 1.0, 1.0, 2.0}};
  comm.arrival = 2.0;
  s.set_communication(dag::EdgeId(0u), comm);
  const EdgeCommunication& read = s.communication(dag::EdgeId(0u));
  EXPECT_EQ(read.kind, EdgeCommunication::Kind::kExclusive);
  EXPECT_DOUBLE_EQ(read.arrival, 2.0);
  ASSERT_EQ(read.occupations.size(), 1u);
  EXPECT_DOUBLE_EQ(read.occupations[0].finish, 2.0);
}

TEST(Schedule, UtilisationAndDump) {
  Rng rng(1);
  const dag::TaskGraph graph = dag::chain(2, 4.0, 1.0);
  const net::Topology topo =
      net::fully_connected(2, net::SpeedConfig{}, rng);
  Schedule s("X", 2, 1);
  s.place_task(dag::TaskId(0u),
               TaskPlacement{topo.processors()[0], 0.0, 4.0});
  s.place_task(dag::TaskId(1u),
               TaskPlacement{topo.processors()[0], 4.0, 8.0});
  EdgeCommunication comm;
  comm.kind = EdgeCommunication::Kind::kLocal;
  comm.arrival = 4.0;
  s.set_communication(dag::EdgeId(0u), comm);
  EXPECT_DOUBLE_EQ(s.processor_utilisation(graph, topo), 0.5);
  const std::string dump = s.to_string(graph, topo);
  EXPECT_NE(dump.find("makespan=8"), std::string::npos);
  EXPECT_NE(dump.find("P0"), std::string::npos);
}

}  // namespace
}  // namespace edgesched::sched
