// obs::FlightRecorder: ring bounds, sequence ordering, run-ID stamping,
// postmortem dump shape, and the EDGESCHED_POSTMORTEM_DIR gate.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/run_context.hpp"

namespace edgesched::obs {
namespace {

/// Every test shares the process-global recorder: start from a clean
/// default state and leave one behind.
class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flight_recorder().set_enabled(true);
    flight_recorder().set_capacity(FlightRecorder::kDefaultCapacity);
    flight_recorder().clear();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(FlightRecorderTest, RecordsAndDumpsInSequenceOrder) {
  flight_recorder().record(FlightEventKind::kSchedule, "test/a", 1.0, 10,
                           2.5);
  flight_recorder().record(FlightEventKind::kFault, "test/b", 2.0, 3, 0.0);
  const JsonValue dump = flight_recorder().dump_json("unit_test");
  EXPECT_EQ(dump.at("type").as_string(), "postmortem");
  EXPECT_EQ(dump.at("reason").as_string(), "unit_test");
  const JsonValue& entries = dump.at("entries");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_DOUBLE_EQ(entries.at(0).at("seq").as_number(), 1.0);
  EXPECT_EQ(entries.at(0).at("kind").as_string(), "schedule");
  EXPECT_EQ(entries.at(0).at("label").as_string(), "test/a");
  EXPECT_DOUBLE_EQ(entries.at(0).at("a").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(entries.at(0).at("b").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(entries.at(1).at("seq").as_number(), 2.0);
  EXPECT_EQ(entries.at(1).at("kind").as_string(), "fault");
}

TEST_F(FlightRecorderTest, RingKeepsOnlyTheLastCapacityEntries) {
  flight_recorder().set_capacity(4);
  for (int i = 0; i < 10; ++i) {
    flight_recorder().record(FlightEventKind::kNote, "test/overflow",
                             static_cast<double>(i));
  }
  EXPECT_EQ(flight_recorder().size(), 4u);
  const JsonValue dump = flight_recorder().dump_json("overflow");
  const JsonValue& entries = dump.at("entries");
  ASSERT_EQ(entries.size(), 4u);
  // Oldest entries evicted: seqs 7..10 survive.
  EXPECT_DOUBLE_EQ(entries.at(0).at("seq").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(entries.at(3).at("seq").as_number(), 10.0);
}

TEST_F(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  {
    const ScopedFlightRecorderPause pause;
    EXPECT_FALSE(flight_recorder().enabled());
    flight_recorder().record(FlightEventKind::kNote, "test/ignored");
  }
  EXPECT_TRUE(flight_recorder().enabled());
  EXPECT_EQ(flight_recorder().size(), 0u);
}

TEST_F(FlightRecorderTest, StampsTheCurrentRunId) {
  flight_recorder().record(FlightEventKind::kNote, "test/outside");
  const std::uint64_t run = mint_run_id();
  {
    const ScopedRunId scope(run);
    flight_recorder().record(FlightEventKind::kNote, "test/inside");
  }
  const JsonValue dump = flight_recorder().dump_json("runs");
  const JsonValue& entries = dump.at("entries");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_DOUBLE_EQ(entries.at(0).at("run").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(entries.at(1).at("run").as_number(),
                   static_cast<double>(run));
}

TEST_F(FlightRecorderTest, ClearResetsTheSequenceCounter) {
  flight_recorder().record(FlightEventKind::kNote, "test/one");
  flight_recorder().clear();
  EXPECT_EQ(flight_recorder().size(), 0u);
  flight_recorder().record(FlightEventKind::kNote, "test/two");
  const JsonValue dump = flight_recorder().dump_json("clear");
  ASSERT_EQ(dump.at("entries").size(), 1u);
  EXPECT_DOUBLE_EQ(dump.at("entries").at(0).at("seq").as_number(), 1.0);
}

TEST_F(FlightRecorderTest, MergesRingsAcrossThreads) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        flight_recorder().record(FlightEventKind::kNote, "test/thread");
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const JsonValue dump = flight_recorder().dump_json("threads");
  const JsonValue& entries = dump.at("entries");
  ASSERT_EQ(entries.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  // The merged view is strictly ordered by the global sequence.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries.at(i - 1).at("seq").as_number(),
              entries.at(i).at("seq").as_number());
  }
}

TEST_F(FlightRecorderTest, WritePostmortemIsParsableJson) {
  flight_recorder().record(FlightEventKind::kExecEnd, "exec/execute", 42.0,
                           1, 42.0);
  std::ostringstream os;
  flight_recorder().write_postmortem(os, "on_demand");
  const JsonValue parsed = JsonValue::parse(os.str());
  EXPECT_EQ(parsed.at("reason").as_string(), "on_demand");
  EXPECT_EQ(parsed.at("entries").size(), 1u);
}

TEST_F(FlightRecorderTest, MaybeWritePostmortemIsGatedOnTheEnvVar) {
  // Unset: no file, empty path.
  ::unsetenv("EDGESCHED_POSTMORTEM_DIR");
  EXPECT_EQ(flight_recorder().maybe_write_postmortem("gate_test"), "");

  // Set: the dump lands in the directory with a slugged filename.
  const std::string dir = ::testing::TempDir();
  ::setenv("EDGESCHED_POSTMORTEM_DIR", dir.c_str(), 1);
  flight_recorder().record(FlightEventKind::kAbort, "test/gate");
  const std::string path =
      flight_recorder().maybe_write_postmortem("gate test!");
  ::unsetenv("EDGESCHED_POSTMORTEM_DIR");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("postmortem_gate_test_.json"), std::string::npos)
      << path;
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue parsed = JsonValue::parse(buffer.str());
  EXPECT_EQ(parsed.at("reason").as_string(), "gate test!");
}

TEST(FlightEventKindTest, NamesAreStable) {
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kSchedule),
               "schedule");
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kExecStart),
               "exec_start");
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kFault), "fault");
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kRecovery),
               "recovery");
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kCache), "cache");
  EXPECT_STREQ(flight_event_kind_name(FlightEventKind::kNote), "note");
}

}  // namespace
}  // namespace edgesched::obs
