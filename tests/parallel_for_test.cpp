// util::static_chunk / util::WorkerTeam / svc::ThreadPool::parallel_for
// unit suite: the deterministic partition rule, the fork/join dispatch
// machinery, and exception propagation. The byte-identity these
// primitives buy the scheduler is pinned end-to-end by
// tests/parallel_engine_property_test.cpp; this file checks the
// primitives in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "svc/thread_pool.hpp"
#include "util/parallel_for.hpp"

namespace edgesched::util {
namespace {

TEST(StaticChunk, PartitionsExactlyAndBalanced) {
  for (std::size_t n : {0u, 1u, 2u, 7u, 16u, 97u, 256u}) {
    for (std::size_t lanes : {1u, 2u, 3u, 4u, 8u, 13u}) {
      std::vector<int> covered(n, 0);
      std::size_t min_size = n + 1;
      std::size_t max_size = 0;
      std::size_t previous_end = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        const ChunkRange range = static_chunk(n, lanes, lane);
        ASSERT_LE(range.begin, range.end);
        // Chunks are contiguous and in lane order.
        EXPECT_EQ(range.begin, previous_end);
        previous_end = range.end;
        const std::size_t size = range.end - range.begin;
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
        for (std::size_t i = range.begin; i < range.end; ++i) {
          ASSERT_LT(i, n);
          ++covered[i];
        }
      }
      EXPECT_EQ(previous_end, n) << "n=" << n << " lanes=" << lanes;
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(covered[i], 1) << "index " << i << " covered "
                                 << covered[i] << " times";
      }
      if (n > 0) {
        EXPECT_LE(max_size - min_size, 1u)
            << "n=" << n << " lanes=" << lanes;
      }
    }
  }
}

TEST(WorkerTeam, SingleLaneRunsInline) {
  WorkerTeam team(1);
  EXPECT_EQ(team.lanes(), 1u);
  std::vector<std::size_t> seen_lane;
  team.run(5, [&](std::size_t lane, std::size_t begin, std::size_t end) {
    seen_lane.push_back(lane);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(seen_lane, std::vector<std::size_t>{0});
}

TEST(WorkerTeam, ComputesSameResultAsSerialAcrossManyRuns) {
  constexpr std::size_t kItems = 997;
  std::vector<std::uint64_t> want(kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    want[i] = i * i + 1;
  }
  WorkerTeam team(4);
  EXPECT_EQ(team.lanes(), 4u);
  std::vector<std::uint64_t> got(kItems, 0);
  // Many dispatches through one team: the generation counter and the
  // spin-then-block join must hold up across reuse.
  for (int round = 0; round < 200; ++round) {
    std::fill(got.begin(), got.end(), 0);
    team.run(kItems,
             [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
               for (std::size_t i = begin; i < end; ++i) {
                 got[i] = i * i + 1;
               }
             });
    ASSERT_EQ(got, want) << "round " << round;
  }
}

TEST(WorkerTeam, EveryLaneParticipates) {
  constexpr std::size_t kLanes = 4;
  WorkerTeam team(kLanes);
  std::vector<std::atomic<int>> hits(kLanes);
  team.run(kLanes * 3, [&](std::size_t lane, std::size_t begin,
                           std::size_t end) {
    EXPECT_EQ(end - begin, 3u);
    hits[lane].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(hits[lane].load(), 1) << "lane " << lane;
  }
}

TEST(WorkerTeam, EmptyRangeSkipsDispatch) {
  WorkerTeam team(4);
  std::atomic<int> calls{0};
  team.run(0, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  // n == 0 never dispatches: no chunk, no body call on any lane.
  EXPECT_EQ(calls.load(), 0);
}

TEST(WorkerTeam, RethrowsWorkerExceptionAndStaysUsable) {
  WorkerTeam team(4);
  EXPECT_THROW(
      team.run(16,
               [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   if (i == 13) {
                     throw std::runtime_error("lane failure");
                   }
                 }
               }),
      std::runtime_error);
  // The team must survive a failed run: join happened, state was reset.
  std::atomic<std::uint64_t> sum{0};
  team.run(100, [&](std::size_t /*lane*/, std::size_t begin,
                    std::size_t end) {
    std::uint64_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      local += i;
    }
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolParallelFor, MatchesSerialAndUsesStaticChunks) {
  svc::ThreadPool pool(3);
  constexpr std::size_t kItems = 101;
  std::vector<std::size_t> owner(kItems, static_cast<std::size_t>(-1));
  pool.parallel_for(kItems, 4,
                    [&](std::size_t lane, std::size_t begin,
                        std::size_t end) {
                      const ChunkRange want = static_chunk(kItems, 4, lane);
                      EXPECT_EQ(begin, want.begin);
                      EXPECT_EQ(end, want.end);
                      for (std::size_t i = begin; i < end; ++i) {
                        owner[i] = lane;
                      }
                    });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_NE(owner[i], static_cast<std::size_t>(-1)) << "index " << i;
  }
}

TEST(ThreadPoolParallelFor, PropagatesBodyExceptions) {
  svc::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   10, 3,
                   [&](std::size_t lane, std::size_t, std::size_t) {
                     if (lane == 2) {
                       throw std::runtime_error("pooled lane failure");
                     }
                   }),
               std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(4, 2, [&](std::size_t, std::size_t begin,
                              std::size_t end) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace edgesched::util
