#include "sched/ba.hpp"

#include <gtest/gtest.h>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "sched/validator.hpp"

namespace edgesched::sched {
namespace {

net::Topology star(std::size_t procs) {
  Rng rng(1);
  return net::switched_star(procs, net::SpeedConfig{}, rng);
}

TEST(BasicAlgorithm, SingleProcessorSerialises) {
  Rng rng(1);
  const net::Topology topo = net::switched_star(1, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::fork_join(3, 2.0, 5.0);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 5 * 2.0);  // all 5 tasks back-to-back
}

TEST(BasicAlgorithm, IndependentTasksSpread) {
  dag::TaskGraph graph;
  (void)graph.add_task(4.0);
  (void)graph.add_task(4.0);
  const net::Topology topo = star(2);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);  // one task per processor
  EXPECT_NE(s.task(dag::TaskId(0u)).processor,
            s.task(dag::TaskId(1u)).processor);
}

TEST(BasicAlgorithm, KeepsChainLocalWhenCommIsExpensive) {
  // Chain a->b with cost 4 over a 2-hop star: remote finish would be 8,
  // local finish is 4.
  const dag::TaskGraph graph = dag::chain(2, 2.0, 4.0);
  const net::Topology topo = star(2);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.task(dag::TaskId(0u)).processor,
            s.task(dag::TaskId(1u)).processor);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
  EXPECT_EQ(s.communication(dag::EdgeId(0u)).kind,
            EdgeCommunication::Kind::kLocal);
}

TEST(BasicAlgorithm, OffloadsWhenCommIsCheap) {
  // Fork with many children and cheap communication: children spread.
  const dag::TaskGraph graph = dag::fork(4, 10.0, 0.5);
  const net::Topology topo = star(4);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  // Source runs [0, 10]; at least one child is offloaded (10 + 0.5*2 hops
  // beats waiting 10 more units locally).
  std::size_t remote = 0;
  for (std::size_t i = 1; i <= 4; ++i) {
    if (s.task(dag::TaskId(i)).processor !=
        s.task(dag::TaskId(0u)).processor) {
      ++remote;
    }
  }
  EXPECT_GE(remote, 3u);
  EXPECT_LT(s.makespan(), 40.0);
}

TEST(BasicAlgorithm, CrossTransferOccupiesBothHops) {
  const dag::TaskGraph graph = dag::fork(2, 20.0, 6.0);
  const net::Topology topo = star(3);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  bool saw_exclusive = false;
  for (dag::EdgeId e : graph.all_edges()) {
    const EdgeCommunication& comm = s.communication(e);
    if (comm.kind == EdgeCommunication::Kind::kExclusive) {
      saw_exclusive = true;
      EXPECT_EQ(comm.route.size(), 2u);  // proc -> switch -> proc
      EXPECT_EQ(comm.occupations.size(), 2u);
    }
  }
  EXPECT_TRUE(saw_exclusive);
}

TEST(BasicAlgorithm, ZeroCostEdgesAreFree) {
  const dag::TaskGraph graph = dag::fork(2, 3.0, 0.0);
  const net::Topology topo = star(3);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);  // children start right at t=3
}

TEST(BasicAlgorithm, DeterministicAcrossRuns) {
  Rng rng(5);
  dag::LayeredDagParams params;
  params.num_tasks = 30;
  const dag::TaskGraph graph = dag::random_layered(params, rng);
  net::RandomWanParams wan;
  wan.num_processors = 6;
  Rng net_rng(6);
  const net::Topology topo = net::random_wan(wan, net_rng);
  const Schedule a = BasicAlgorithm{}.schedule(graph, topo);
  const Schedule b = BasicAlgorithm{}.schedule(graph, topo);
  EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  for (dag::TaskId t : graph.all_tasks()) {
    EXPECT_EQ(a.task(t).processor, b.task(t).processor);
    EXPECT_DOUBLE_EQ(a.task(t).start, b.task(t).start);
  }
}

TEST(BasicAlgorithm, HeterogeneousSpeedsRespected) {
  dag::TaskGraph graph;
  (void)graph.add_task(10.0);
  net::Topology topo;
  const net::NodeId slow = topo.add_processor(1.0, "slow");
  const net::NodeId fast = topo.add_processor(5.0, "fast");
  topo.add_duplex_link(slow, fast, 1.0);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
  EXPECT_EQ(s.task(dag::TaskId(0u)).processor, fast);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(BasicAlgorithm, RejectsBadInputs) {
  const dag::TaskGraph graph = dag::chain(2);
  net::Topology no_procs;
  (void)no_procs.add_switch();
  EXPECT_THROW((void)BasicAlgorithm{}.schedule(graph, no_procs),
               std::invalid_argument);

  net::Topology disconnected;
  (void)disconnected.add_processor();
  (void)disconnected.add_processor();
  EXPECT_THROW((void)BasicAlgorithm{}.schedule(graph, disconnected),
               std::invalid_argument);
}

TEST(BasicAlgorithm, ValidOnBusTopology) {
  Rng rng(2);
  const net::Topology topo = net::bus(3, net::SpeedConfig{}, rng);
  const dag::TaskGraph graph = dag::fork_join(4, 1.0, 2.0);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
}

TEST(BasicAlgorithm, ValidOnHalfDuplexPair) {
  net::Topology topo;
  const net::NodeId a = topo.add_processor();
  const net::NodeId b = topo.add_processor();
  topo.add_half_duplex_link(a, b, 1.0);
  const dag::TaskGraph graph = dag::stencil_1d(3, 3, 1.0, 1.5);
  const Schedule s = BasicAlgorithm{}.schedule(graph, topo);
  validate_or_throw(graph, topo, s);
}

}  // namespace
}  // namespace edgesched::sched
