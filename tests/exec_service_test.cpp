// SchedulerService::execute: async schedule replay on the pool with the
// content-addressed execution cache. The concurrency tests run under the
// TSan CI job.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "svc/scheduler_service.hpp"
#include "util/rng.hpp"

namespace edgesched::svc {
namespace {

std::shared_ptr<const dag::TaskGraph> shared_graph(dag::TaskGraph graph) {
  return std::make_shared<const dag::TaskGraph>(std::move(graph));
}

std::shared_ptr<const net::Topology> shared_star(std::size_t processors) {
  Rng rng(11);
  return std::make_shared<const net::Topology>(
      net::switched_star(processors, net::SpeedConfig{}, rng));
}

TEST(ExecService, ExecuteMatchesDirectExecutorCall) {
  SchedulerService service({.threads = 2});
  const auto graph = shared_graph(dag::fork_join(6, 2.0, 4.0));
  const auto topo = shared_star(3);
  const auto schedule = service.submit(graph, topo, "oihsa").get();

  const auto report = service.execute(graph, topo, schedule).get();
  ASSERT_NE(report, nullptr);
  ASSERT_TRUE(report->completed) << report->failure;
  const exec::ExecutionReport direct =
      exec::execute(*graph, *topo, *schedule);
  EXPECT_EQ(report->achieved_makespan, direct.achieved_makespan);
  EXPECT_EQ(report->achieved_makespan, schedule->makespan());
}

TEST(ExecService, RepeatedExecuteHitsTheExecutionCache) {
  SchedulerService service({.threads = 2});
  const auto graph = shared_graph(dag::fork_join(6, 2.0, 4.0));
  const auto topo = shared_star(3);
  const auto schedule = service.submit(graph, topo, "ba").get();

  const auto first = service.execute(graph, topo, schedule).get();
  const auto second = service.execute(graph, topo, schedule).get();
  EXPECT_EQ(first, second);  // the very same cached report
  EXPECT_EQ(service.execution_cache().stats().hits, 1u);
  EXPECT_EQ(service.execution_cache().stats().misses, 1u);
  EXPECT_EQ(
      service.metrics().counter("svc_exec_requests_total").value(), 2u);
  EXPECT_EQ(
      service.metrics().counter("svc_exec_cache_hits_total").value(), 1u);
}

TEST(ExecService, DifferentOptionsCacheSeparately) {
  SchedulerService service({.threads = 1});
  const auto graph = shared_graph(dag::chain(5, 2.0, 3.0));
  const auto topo = shared_star(2);
  const auto schedule = service.submit(graph, topo, "ba").get();

  exec::ExecutionOptions noisy;
  noisy.model.duration_spread = 0.2;
  const auto nominal = service.execute(graph, topo, schedule).get();
  const auto jittered =
      service.execute(graph, topo, schedule, noisy).get();
  EXPECT_NE(nominal, jittered);
  EXPECT_EQ(service.execution_cache().stats().misses, 2u);
  EXPECT_GE(jittered->achieved_makespan, nominal->achieved_makespan);
}

TEST(ExecService, ManyConcurrentExecutes) {
  // Hammer one service from many futures (exercised under TSan): mixed
  // schedule and execute traffic against the same shared inputs.
  SchedulerService service({.threads = 4});
  const auto graph = shared_graph(dag::fork_join(8, 1.5, 3.0));
  const auto topo = shared_star(3);
  const auto schedule = service.submit(graph, topo, "oihsa").get();

  std::vector<std::future<SchedulerService::ExecutionPtr>> futures;
  for (int i = 0; i < 32; ++i) {
    exec::ExecutionOptions options;
    options.model.duration_spread = 0.1;
    options.model.seed = static_cast<std::uint64_t>(1 + i % 4);
    futures.push_back(service.execute(graph, topo, schedule, options));
  }
  for (auto& future : futures) {
    const auto report = future.get();
    ASSERT_NE(report, nullptr);
    EXPECT_TRUE(report->completed) << report->failure;
  }
  EXPECT_EQ(
      service.metrics().counter("svc_exec_requests_total").value(), 32u);
}

TEST(ExecService, ExecuteNowRunsFaultyPlans) {
  SchedulerService service({.threads = 2});
  Rng rng(3);
  const dag::TaskGraph graph = dag::fork_join(6, 2.0, 4.0);
  const net::Topology topo =
      net::switched_star(3, net::SpeedConfig{}, rng);
  const auto schedule = service.schedule_now(graph, topo, "oihsa");

  exec::ExecutionOptions options;
  options.policy = exec::RecoveryPolicy::kReschedule;
  options.faults.fail_processor(schedule->makespan() * 0.3,
                                topo.processors().front(), true);
  const auto report =
      service.execute_now(graph, topo, *schedule, options);
  ASSERT_NE(report, nullptr);
  ASSERT_TRUE(report->completed) << report->failure;
  EXPECT_GE(report->reschedules, 1u);
}

TEST(ExecService, RejectsNullAndMalformedRequests) {
  SchedulerService service({.threads = 1});
  const auto graph = shared_graph(dag::chain(3, 1.0, 1.0));
  const auto topo = shared_star(2);
  const auto schedule = service.submit(graph, topo, "ba").get();

  EXPECT_THROW((void)service.execute(nullptr, topo, schedule),
               std::invalid_argument);
  EXPECT_THROW((void)service.execute(graph, nullptr, schedule),
               std::invalid_argument);
  EXPECT_THROW((void)service.execute(graph, topo, nullptr),
               std::invalid_argument);
  exec::ExecutionOptions bad;
  bad.model.duration_spread = -0.5;
  EXPECT_THROW((void)service.execute(graph, topo, schedule, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace edgesched::svc
