#include "svc/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace edgesched::svc {
namespace {

TEST(ThreadPool, RunsSubmittedWorkAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ZeroThreadsDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([]() { return 1; });
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // A worker that saw an exception keeps serving.
  EXPECT_EQ(good.get(), 1);
  EXPECT_EQ(pool.submit([]() { return 2; }).get(), 2);
}

TEST(ThreadPool, ShutdownDrainsQueue) {
  std::atomic<int> executed{0};
  ThreadPool pool(1);  // single worker => work queues up behind the sleep
  pool.submit([]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  constexpr int kJobs = 32;
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&executed]() {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.shutdown();  // must wait for every queued job, not drop them
  EXPECT_EQ(executed.load(), kJobs);
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([]() { return 0; }), std::invalid_argument);
  pool.shutdown();  // idempotent
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> executed{0};
  constexpr int kJobs = 64;
  {
    ThreadPool pool(2);
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([&executed]() {
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // destructor == shutdown()
  EXPECT_EQ(executed.load(), kJobs);
}

TEST(ThreadPool, ConcurrentSubmittersAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  constexpr int kSubmitters = 8;
  constexpr int kJobsEach = 50;
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &executed]() {
      std::vector<std::future<void>> futures;
      futures.reserve(kJobsEach);
      for (int i = 0; i < kJobsEach; ++i) {
        futures.push_back(pool.submit([&executed]() {
          executed.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (std::thread& t : submitters) {
    t.join();
  }
  EXPECT_EQ(executed.load(), kSubmitters * kJobsEach);
}

}  // namespace
}  // namespace edgesched::svc
