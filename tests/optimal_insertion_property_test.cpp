// Randomized cross-check of OIHSA's optimal insertion against an
// independent brute-force search: for every insertion position, simulate
// the deferral cascade directly (per-slot slack checks instead of the
// accum recurrence) and take the earliest feasible start. probe_optimal
// must match it exactly.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <vector>

#include "timeline/optimal_insertion.hpp"
#include "util/rng.hpp"

namespace edgesched::timeline {
namespace {

struct Scenario {
  LinkTimeline timeline;
  std::map<dag::EdgeId, double> slack;

  DeferralFn deferral() const {
    return [this](const TimeSlot& slot) {
      return slack.at(slot.edge);
    };
  }
};

Scenario random_scenario(Rng& rng) {
  Scenario scenario;
  const std::size_t slots = static_cast<std::size_t>(
      rng.uniform_int(0, 8));
  for (std::size_t i = 0; i < slots; ++i) {
    const double gap = rng.uniform_real(0.0, 3.0);
    const double duration = rng.uniform_real(0.5, 4.0);
    const dag::EdgeId edge(i);
    scenario.timeline.commit(
        scenario.timeline.probe_basic(
            scenario.timeline.last_finish() + gap, 0.0, duration),
        edge);
    const int kind = static_cast<int>(rng.uniform_int(0, 2));
    scenario.slack[edge] =
        kind == 0 ? 0.0 : (kind == 1 ? rng.uniform_real(0.0, 2.0)
                                     : rng.uniform_real(2.0, 20.0));
  }
  return scenario;
}

/// Independent brute force: earliest feasible start over all insertion
/// positions, simulating the cascade slot by slot.
double brute_force_start(const Scenario& scenario, double t_es,
                         double t_f_min, double duration) {
  const auto& slots = scenario.timeline.slots();
  const std::size_t n = slots.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t p = 0; p <= n; ++p) {
    const double gap_start = (p == 0) ? 0.0 : slots[p - 1].finish;
    const double start =
        std::max(std::max(gap_start, t_es), t_f_min - duration);
    double frontier = start + duration;
    bool feasible = true;
    for (std::size_t j = p; j < n && feasible; ++j) {
      if (slots[j].start + 1e-9 >= frontier) {
        break;
      }
      const double delta = frontier - slots[j].start;
      if (delta > scenario.slack.at(slots[j].edge) + 1e-9) {
        feasible = false;
      }
      frontier = slots[j].finish + delta;
    }
    if (feasible) {
      best = std::min(best, start);
    }
  }
  return best;
}

class OptimalInsertionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalInsertionProperty, MatchesBruteForce) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const Scenario scenario = random_scenario(rng);
    const double t_es = rng.uniform_real(0.0, 15.0);
    const double duration = rng.uniform_real(0.5, 5.0);
    const double t_f_min =
        rng.bernoulli(0.3) ? t_es + rng.uniform_real(0.0, 8.0) : 0.0;

    const OptimalPlacement got = probe_optimal(
        scenario.timeline, t_es, t_f_min, duration, scenario.deferral());
    const double expected =
        brute_force_start(scenario, t_es, t_f_min, duration);
    ASSERT_NEAR(got.placement.start, expected, 1e-6)
        << "round " << round << ", " << scenario.timeline.size()
        << " slots, t_es=" << t_es << ", t_f_min=" << t_f_min
        << ", dur=" << duration;

    // Committing must preserve every timeline invariant and respect each
    // displaced slot's slack.
    LinkTimeline copy = scenario.timeline;
    for (const SlotShift& shift : got.shifts) {
      const TimeSlot& old_slot = copy.slots()[shift.position];
      EXPECT_LE(shift.new_start - old_slot.start,
                scenario.slack.at(old_slot.edge) + 1e-6);
    }
    commit_optimal(copy, got, dag::EdgeId(999u));
    copy.check_invariants();
    EXPECT_EQ(copy.size(), scenario.timeline.size() + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalInsertionProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

}  // namespace
}  // namespace edgesched::timeline
