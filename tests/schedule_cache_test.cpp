#include "svc/schedule_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>

#include "dag/generators.hpp"
#include "net/builders.hpp"
#include "sched/oihsa.hpp"
#include "util/rng.hpp"

namespace edgesched::svc {
namespace {

sched::Schedule dummy_schedule(const std::string& algorithm) {
  return sched::Schedule(algorithm, 0, 0);
}

ScheduleCache::SchedulePtr dummy_ptr(const std::string& algorithm) {
  return std::make_shared<const sched::Schedule>(dummy_schedule(algorithm));
}

net::Topology star4() {
  Rng rng(7);
  return net::switched_star(4, net::SpeedConfig{}, rng);
}

TEST(RequestFingerprint, StableAndNameInsensitive) {
  const dag::TaskGraph g1 = dag::chain(5, 2.0, 3.0);
  dag::TaskGraph g2 = dag::chain(5, 2.0, 3.0);
  g2.set_name("relabelled");
  const net::Topology topo = star4();
  EXPECT_EQ(request_fingerprint(g1, topo, "OIHSA"),
            request_fingerprint(g2, topo, "OIHSA"));
  EXPECT_NE(request_fingerprint(g1, topo, "OIHSA"),
            request_fingerprint(g1, topo, "BBSA"));
}

TEST(RequestFingerprint, SensitiveToGraphAndTopologyContent) {
  const net::Topology topo = star4();
  const dag::TaskGraph base = dag::chain(5, 2.0, 3.0);
  dag::TaskGraph heavier = dag::chain(5, 2.0, 3.0);
  heavier.set_weight(dag::TaskId(0u), 2.5);
  EXPECT_NE(request_fingerprint(base, topo, "BA"),
            request_fingerprint(heavier, topo, "BA"));

  Rng rng(7);
  net::Topology fast = net::switched_star(
      4, net::SpeedConfig{.fixed_link_speed = 2.0}, rng);
  EXPECT_NE(request_fingerprint(base, topo, "BA"),
            request_fingerprint(base, fast, "BA"));
}

TEST(TaskGraphFingerprint, DistinctDagsNeverCollideInFuzz) {
  Rng rng(20060815);
  std::unordered_set<std::uint64_t> seen;
  constexpr std::size_t kInstances = 1000;
  for (std::size_t i = 0; i < kInstances; ++i) {
    dag::LayeredDagParams params;
    params.num_tasks = 10 + rng.index(40);
    dag::TaskGraph graph = dag::random_layered(params, rng);
    seen.insert(graph.fingerprint());
  }
  // Random layered DAGs with random U(1,1000) costs are distinct with
  // overwhelming probability, so every fingerprint must be unique.
  EXPECT_EQ(seen.size(), kInstances);
}

TEST(ScheduleCache, HitReturnsCachedScheduleAndRefreshesRecency) {
  ScheduleCache cache(8);
  EXPECT_EQ(cache.get(1), nullptr);
  const auto entry = dummy_ptr("A");
  cache.put(1, entry);
  EXPECT_EQ(cache.get(1), entry);  // same object, not a copy
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ScheduleCache, HitMatchesFreshlyComputedSchedule) {
  const dag::TaskGraph graph = dag::fork_join(6, 3.0, 5.0);
  const net::Topology topo = star4();
  const sched::Oihsa oihsa;

  ScheduleCache cache(4);
  const std::uint64_t key = request_fingerprint(graph, topo, oihsa.name());
  cache.put(key, std::make_shared<const sched::Schedule>(
                     oihsa.schedule(graph, topo)));

  const ScheduleCache::SchedulePtr hit = cache.get(key);
  ASSERT_NE(hit, nullptr);
  const sched::Schedule fresh = oihsa.schedule(graph, topo);
  ASSERT_EQ(hit->num_tasks(), fresh.num_tasks());
  EXPECT_DOUBLE_EQ(hit->makespan(), fresh.makespan());
  for (dag::TaskId t : graph.all_tasks()) {
    EXPECT_EQ(hit->task(t).processor, fresh.task(t).processor);
    EXPECT_DOUBLE_EQ(hit->task(t).start, fresh.task(t).start);
    EXPECT_DOUBLE_EQ(hit->task(t).finish, fresh.task(t).finish);
  }
}

TEST(ScheduleCache, LruEvictsLeastRecentlyUsed) {
  ScheduleCache cache(2);
  cache.put(1, dummy_ptr("one"));
  cache.put(2, dummy_ptr("two"));
  EXPECT_NE(cache.get(1), nullptr);  // 1 is now most recent
  cache.put(3, dummy_ptr("three"));  // evicts 2
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  EXPECT_EQ(cache.get(1)->algorithm(), "one");
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ScheduleCache, PutExistingKeyReplacesWithoutEviction) {
  ScheduleCache cache(2);
  cache.put(1, dummy_ptr("old"));
  cache.put(1, dummy_ptr("new"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(1)->algorithm(), "new");
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(ScheduleCache, EvictedEntryStaysAliveForHolders) {
  ScheduleCache cache(1);
  const auto held = dummy_ptr("held");
  cache.put(1, held);
  cache.put(2, dummy_ptr("other"));  // evicts key 1
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(held->algorithm(), "held");  // still valid
}

TEST(ScheduleCache, ZeroCapacityRejected) {
  EXPECT_THROW(ScheduleCache(0), std::invalid_argument);
}

TEST(ScheduleCache, ClearKeepsCounters) {
  ScheduleCache cache(4);
  cache.put(1, dummy_ptr("x"));
  EXPECT_NE(cache.get(1), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

}  // namespace
}  // namespace edgesched::svc
