// Executor properties over fuzzed instances: nominal timetable replay is
// bit-exact for every registry algorithm, and seeded runs are
// byte-identical.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "dag/generators.hpp"
#include "dag/properties.hpp"
#include "exec/executor.hpp"
#include "net/builders.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace edgesched::exec {
namespace {

struct Instance {
  dag::TaskGraph graph;
  net::Topology topo;
};

// Small fuzzed instances (the registry includes the GA/SA searchers, so
// each schedule call must stay cheap).
Instance fuzz_instance(std::uint64_t seed) {
  Rng rng(seed);
  dag::LayeredDagParams params;
  params.num_tasks =
      8 + static_cast<std::size_t>(rng.uniform_int(0, 10));
  dag::TaskGraph graph = dag::random_layered(params, rng);
  dag::rescale_to_ccr(graph, 0.5 + rng.uniform_real(0.0, 2.0));
  const std::size_t procs = 2 + static_cast<std::size_t>(
                                    rng.uniform_int(0, 3));
  net::Topology topo = [&] {
    switch (rng.uniform_int(0, 2)) {
      case 0: {
        net::RandomWanParams wan;
        wan.num_processors = procs;
        return net::random_wan(wan, rng);
      }
      case 1:
        return net::switched_star(procs, net::SpeedConfig{}, rng);
      default:
        return net::ring(procs, net::SpeedConfig{}, rng);
    }
  }();
  return Instance{std::move(graph), std::move(topo)};
}

void expect_bit_exact(const Instance& inst, const sched::Schedule& schedule,
                      const std::string& label) {
  const ExecutionReport report =
      execute(inst.graph, inst.topo, schedule);
  ASSERT_TRUE(report.completed) << label << ": " << report.failure;
  // Bit-exact: EXPECT_EQ on doubles, no tolerance.
  ASSERT_EQ(report.achieved_makespan, schedule.makespan()) << label;
  for (const TaskRecord& record : report.tasks) {
    const auto& placed = schedule.task(dag::TaskId(record.task));
    ASSERT_EQ(record.start, placed.start)
        << label << " task " << record.task;
    ASSERT_EQ(record.finish, placed.finish)
        << label << " task " << record.task;
  }
}

TEST(ExecutorProperty, NominalReplayBitExactOn100FuzzedInstances) {
  const auto& registry = sched::algorithm_registry();
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Instance inst = fuzz_instance(1000 + i);
    for (const auto& entry : registry) {
      // The metaheuristic searchers cost ~1000 schedule evaluations per
      // call; exercise them on every tenth instance only.
      const bool heavy = entry.key == "ga" || entry.key == "sa";
      if (heavy && i % 10 != 0) continue;
      const sched::Schedule schedule =
          entry.make()->schedule(inst.graph, inst.topo);
      expect_bit_exact(inst, schedule,
                       entry.key + "@" + std::to_string(i));
    }
  }
}

TEST(ExecutorProperty, SameSeedRunsAreByteIdentical) {
  for (std::uint64_t i = 0; i < 12; ++i) {
    const Instance inst = fuzz_instance(5000 + i);
    const sched::Schedule schedule =
        sched::make_scheduler(i % 2 == 0 ? "oihsa" : "bbsa")
            ->schedule(inst.graph, inst.topo);
    ExecutionOptions options;
    options.model.duration_spread = 0.3;
    options.model.bandwidth_spread = 0.2;
    options.model.straggler_probability = 0.1;
    options.model.seed = 40 + i;
    HazardConfig hazard;
    hazard.processor_rate = 0.002;
    hazard.link_rate = 0.001;
    hazard.horizon = 4.0 * schedule.makespan();
    hazard.mean_repair = 0.05 * schedule.makespan();
    hazard.seed = 17 + i;
    options.faults = FaultPlan::sampled(inst.topo, hazard);
    options.policy = RecoveryPolicy::kReschedule;
    const ExecutionReport a =
        execute(inst.graph, inst.topo, schedule, options);
    const ExecutionReport b =
        execute(inst.graph, inst.topo, schedule, options);
    ASSERT_EQ(a.to_json().dump(), b.to_json().dump()) << i;
  }
}

TEST(ExecutorProperty, EventDrivenNominalNeverLater) {
  for (std::uint64_t i = 0; i < 40; ++i) {
    const Instance inst = fuzz_instance(9000 + i);
    const sched::Schedule schedule =
        sched::make_scheduler("ba")->schedule(inst.graph, inst.topo);
    ExecutionOptions options;
    options.dispatch = DispatchMode::kEventDriven;
    const ExecutionReport report =
        execute(inst.graph, inst.topo, schedule, options);
    ASSERT_TRUE(report.completed) << i << ": " << report.failure;
    ASSERT_LE(report.achieved_makespan, schedule.makespan() + 1e-12) << i;
  }
}

}  // namespace
}  // namespace edgesched::exec
